//! The event queue: a deterministic priority queue of future happenings.
//!
//! Determinism matters: two events at the same instant are delivered in the
//! order they were scheduled (FIFO tie-break via a monotone sequence
//! number), so a run is a pure function of topology + seeds.
//!
//! # Structure
//!
//! The queue is two-tier — two hierarchical timing wheels sharing one
//! sequence counter. Packet and link events — the bulk of the load — live
//! in a fine-grained wheel of small `Copy` entries ([`Event`] carries a
//! [`PacketRef`] handle, not a full packet, so an entry is a few dozen
//! bytes): push is O(1) and pop drains a nearly-always-singleton sub-tick
//! front list, which beat the 4-ary min-heap it replaced (comparison sifts
//! on `(time, seq)` keys dominated event-loop profiles). Agent timers live
//! in a coarser wheel with *real* cancellation: cancelling is a generation
//! bump on a slab slot, so the churn of TCP retransmission timers (armed
//! and re-armed on almost every ACK) never bloats the queue with stale
//! entries.
//!
//! Both tiers draw sequence numbers from one shared counter and [`pop`]
//! compares exact `(time, seq)` keys across tiers, so the merged order is
//! byte-for-byte identical to a single global heap — the golden trace
//! digests do not move.
//!
//! [`pop`]: EventQueue::pop
//!
//! ## The wheels
//!
//! Both tiers use the same layout, differing only in tick width (`2^14` ns
//! ≈ 16 µs for packets, chosen so the sub-tick front averages well under
//! one entry; `2^20` ns for timers) and in whether slots hold events
//! directly or generation-checked slab handles. Taking the timer wheel as
//! the worked example: ticks are `2^20` ns (~1.05 ms), 8 levels of 64
//! slots; a
//! timer due at tick `t` is filed at the level of the highest bit where `t`
//! differs from the wheel cursor (6 bits per level), in the slot named by
//! `t`'s 6-bit digit at that level. Two invariants follow directly:
//! every entry at level `L+1` fires after *every* entry at level `L` (its
//! tick exceeds the cursor at a higher digit), and within a level lower
//! slot index means earlier tick. So the next timer is always found in the
//! lowest occupied slot of the lowest occupied level (one `trailing_zeros`
//! per level on an occupancy bitmap); advancing the cursor there
//! redistributes that slot's entries strictly downward until the due ones
//! surface in a small exact-keyed front heap. Sub-tick ordering — many
//! timers inside one 1.05 ms tick — is resolved by that front heap on the
//! exact `(time, seq)` key, preserving the global FIFO contract.

use crate::agent::AgentId;
use crate::link::LinkId;
use crate::node::NodeId;
use crate::packet::PacketRef;
use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// A future happening inside the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// The packet in arena slot `packet` arrives at `node` (propagation
    /// across a link finished, or a local agent handed it to its own node).
    Deliver {
        /// The node the packet arrives at.
        node: NodeId,
        /// Arena handle of the arriving packet.
        packet: PacketRef,
    },
    /// The transmitter of `link` finished serializing its current packet.
    LinkTxDone {
        /// The link whose head-of-line packet completed serialization.
        link: LinkId,
    },
    /// A timer set by `agent` fired. `token` is agent-private state used to
    /// recognize stale timers that were not explicitly cancelled.
    Timer {
        /// The agent that owns the timer.
        agent: AgentId,
        /// Agent-private discriminator.
        token: u64,
    },
    /// An agent's `start` hook should run.
    AgentStart {
        /// The agent to start.
        agent: AgentId,
    },
}

/// A cancellation handle for a timer scheduled with
/// [`EventQueue::schedule_timer`].
///
/// Handles are generation-checked: once the timer fires or is cancelled,
/// the handle goes dead and further [`cancel_timer`](EventQueue::cancel_timer)
/// calls on it return `false` (they never touch a recycled slot).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerHandle {
    id: u32,
    gen: u32,
}

#[derive(Debug, Clone, Copy)]
struct Scheduled {
    at: SimTime,
    /// Clock time at which the event was scheduled. For same-`at` ties the
    /// queue orders by `(sched, seq)`; `seq` alone is equivalent for events
    /// scheduled through one queue (seqs are monotone in `sched`), but
    /// `sched` lets a sharded run position cross-shard injections exactly
    /// where the unsharded run would have scheduled them.
    sched: SimTime,
    seq: u64,
    event: Event,
}

/// Packet-event ticks are nanoseconds divided by `2^PKT_TICK_SHIFT`
/// (~16.4 µs): fine enough that the sub-tick `front` list holds well
/// under one event on average, coarse enough that propagation-delay
/// horizons land one or two wheel levels up.
const PKT_TICK_SHIFT: u32 = 14;
/// Levels for the packet wheel: 9 × 6 = 54 bits covers the 50-bit tick
/// space (`u64` nanoseconds >> 14).
const PKT_LEVELS: usize = 9;

/// Hierarchical wheel for packet/link events — the no-cancellation
/// sibling of [`TimerWheel`].
///
/// Packet events need no handles, so the slots store [`Scheduled`]
/// entries directly; push is O(1) (a `Vec` push plus an occupancy bit)
/// and pop drains a sub-tick `front` min-heap that is nearly always a
/// single element. This replaced a 4-ary min-heap whose branchy
/// `(at, seq)` sifts dominated event-loop profiles; the wheel's ordering
/// argument (strictly-lower-tick-first across levels, exact `(at, seq)`
/// inside the front) is the same one the timer tier proves.
#[derive(Debug, Clone)]
struct PacketWheel {
    /// `PKT_LEVELS × SLOTS_PER_LEVEL` buckets of scheduled events.
    slots: Vec<Vec<Scheduled>>,
    /// Per-level bitmap of non-empty slots.
    occupied: [u64; PKT_LEVELS],
    /// Current wheel position, in packet ticks. Never decreases.
    cursor: u64,
    /// Entries due within the current tick, ordered by exact `(at, seq)`.
    front: BinaryHeap<Reverse<FrontEntry>>,
    /// Key-monotone fast lane of the front tier: same-instant dispatch
    /// chains (a bank's burst of sends, all `at == sched == now` with
    /// increasing `seq`) append here in key order and pop FIFO, so a
    /// synchronized million-packet burst costs O(1) per event instead of
    /// O(log burst) heap sifts. Pop takes the smaller head of the two
    /// front structures; keys never collide (seqs are unique).
    front_fifo: VecDeque<Scheduled>,
    len: usize,
}

/// A [`Scheduled`] entry ordered by its `(at, sched, seq)` key. Seqs are
/// unique within a queue, so key equality implies entry identity and the
/// derived-from-key `Ord`/`Eq` pair stays consistent.
#[derive(Debug, Clone, Copy)]
struct FrontEntry(Scheduled);

impl FrontEntry {
    #[inline]
    fn key(&self) -> (SimTime, SimTime, u64) {
        (self.0.at, self.0.sched, self.0.seq)
    }
}

impl PartialEq for FrontEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl Eq for FrontEntry {}

impl PartialOrd for FrontEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for FrontEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

impl Default for PacketWheel {
    fn default() -> Self {
        Self {
            slots: std::iter::repeat_with(Vec::new)
                .take(PKT_LEVELS * SLOTS_PER_LEVEL)
                .collect(),
            occupied: [0; PKT_LEVELS],
            cursor: 0,
            front: BinaryHeap::new(),
            front_fifo: VecDeque::new(),
            len: 0,
        }
    }
}

impl PacketWheel {
    #[inline]
    fn push(&mut self, s: Scheduled) {
        self.len += 1;
        self.place(s);
    }

    /// Files `s` into the wheel slot (or the front list) where an event
    /// due at `s.at` belongs, relative to the current cursor.
    #[inline]
    fn place(&mut self, s: Scheduled) {
        let tick = s.at.as_nanos() >> PKT_TICK_SHIFT;
        if tick <= self.cursor {
            // Due within the current tick (same-instant sends, or
            // scheduled behind an already-advanced cursor): exact
            // ordering happens in the front tier — the FIFO lane while
            // keys arrive in order, the heap for the rare out-of-order
            // straggler.
            let entry = FrontEntry(s);
            if self
                .front_fifo
                .back()
                .is_none_or(|b| FrontEntry(*b).key() <= entry.key())
            {
                self.front_fifo.push_back(s);
            } else {
                self.front.push(Reverse(entry));
            }
        } else {
            let diff = tick ^ self.cursor;
            let level = ((63 - diff.leading_zeros()) / LEVEL_BITS) as usize;
            debug_assert!(level < PKT_LEVELS, "50-bit ticks fit in 9 levels");
            let slot =
                ((tick >> (LEVEL_BITS as usize * level)) & (SLOTS_PER_LEVEL as u64 - 1)) as usize;
            self.slots[level * SLOTS_PER_LEVEL + slot].push(s);
            self.occupied[level] |= 1u64 << slot;
        }
    }

    /// Advances the wheel until the front tier is non-empty (or the wheel
    /// is empty). Cursor motion only redistributes entries to strictly
    /// lower levels, so this terminates.
    #[inline]
    fn refill_front(&mut self) {
        while self.front.is_empty() && self.front_fifo.is_empty() {
            let mut found = None;
            for (level, &occ) in self.occupied.iter().enumerate() {
                if occ != 0 {
                    found = Some((level, occ.trailing_zeros() as usize));
                    break;
                }
            }
            let Some((level, slot)) = found else {
                return; // wheel empty
            };
            let idx = level * SLOTS_PER_LEVEL + slot;
            self.occupied[level] &= !(1u64 << slot);
            let shift = LEVEL_BITS as usize * level;
            // Jump the cursor to the earliest tick this slot can hold: the
            // cursor's digits above this level, the slot digit, zeros below.
            let high_mask = !((1u64 << (shift + LEVEL_BITS as usize)) - 1);
            let tick_lo = (self.cursor & high_mask) | ((slot as u64) << shift);
            debug_assert!(tick_lo > self.cursor);
            self.cursor = tick_lo;
            let entries = std::mem::take(&mut self.slots[idx]);
            for s in entries {
                self.place(s);
            }
        }
    }

    /// Whether the next front-tier entry comes from the FIFO lane
    /// (smaller key than the heap head). Call after `refill_front`.
    #[inline]
    fn fifo_first(&self) -> bool {
        match (self.front_fifo.front(), self.front.peek()) {
            (Some(f), Some(Reverse(h))) => FrontEntry(*f).key() < h.key(),
            (Some(_), None) => true,
            (None, _) => false,
        }
    }

    #[inline]
    fn peek(&mut self) -> Option<&Scheduled> {
        self.refill_front();
        if self.fifo_first() {
            return self.front_fifo.front();
        }
        self.front.peek().map(|Reverse(FrontEntry(s))| s)
    }

    #[inline]
    fn pop(&mut self) -> Option<Scheduled> {
        self.refill_front();
        let s = if self.fifo_first() {
            self.front_fifo.pop_front()
        } else {
            self.front.pop().map(|Reverse(FrontEntry(s))| s)
        };
        if s.is_some() {
            self.len -= 1;
        }
        s
    }

    #[inline]
    fn len(&self) -> usize {
        self.len
    }
}

/// Timer ticks are nanoseconds divided by `2^TICK_SHIFT` (~1.05 ms).
const TICK_SHIFT: u32 = 20;
/// Bits of tick consumed per wheel level.
const LEVEL_BITS: u32 = 6;
/// Slots per level (`2^LEVEL_BITS`).
const SLOTS_PER_LEVEL: usize = 1 << LEVEL_BITS;
/// Levels; 8 × 6 = 48 bits covers the full 44-bit tick space
/// (`u64` nanoseconds >> 20), so no overflow list is needed.
const LEVELS: usize = 8;

#[derive(Debug, Clone)]
struct TimerEntry {
    at: SimTime,
    sched: SimTime,
    seq: u64,
    agent: AgentId,
    token: u64,
    gen: u32,
}

/// Min-heap key of a due timer: `(at, sched, seq, slab id, gen)`.
type DueTimer = Reverse<(SimTime, SimTime, u64, u32, u32)>;

/// Hierarchical timer wheel with slab-allocated, generation-checked entries.
#[derive(Debug, Clone)]
struct TimerWheel {
    /// Slab of timer entries; `free` holds recyclable indices.
    entries: Vec<TimerEntry>,
    free: Vec<u32>,
    /// `LEVELS × SLOTS_PER_LEVEL` buckets of `(id, gen)` pairs. A pair is
    /// stale (cancelled or moved) when its `gen` no longer matches the
    /// slab entry; stale pairs are skipped when the slot drains.
    slots: Vec<Vec<(u32, u32)>>,
    /// Per-level bitmap of non-empty slots.
    occupied: [u64; LEVELS],
    /// Current wheel position, in ticks. Never decreases.
    cursor: u64,
    /// Due (or sub-tick-resolution) timers, ordered by exact
    /// `(at, sched, seq)`.
    front: BinaryHeap<DueTimer>,
    /// Number of live (scheduled, not yet fired or cancelled) timers.
    live: usize,
    /// Cached key of the earliest live timer; `Err(())` means stale (a
    /// mutation may have changed the minimum) and `Ok(None)` means the
    /// wheel is known empty. Pops vastly outnumber timer mutations, so the
    /// cross-tier compare in [`EventQueue::pop`] usually skips
    /// [`refill_front`](Self::refill_front) entirely.
    min_key: Result<Option<(SimTime, SimTime, u64)>, ()>,
}

impl Default for TimerWheel {
    fn default() -> Self {
        Self {
            entries: Vec::new(),
            free: Vec::new(),
            slots: std::iter::repeat_with(Vec::new)
                .take(LEVELS * SLOTS_PER_LEVEL)
                .collect(),
            occupied: [0; LEVELS],
            cursor: 0,
            front: BinaryHeap::new(),
            live: 0,
            min_key: Ok(None),
        }
    }
}

impl TimerWheel {
    fn insert(
        &mut self,
        at: SimTime,
        sched: SimTime,
        seq: u64,
        agent: AgentId,
        token: u64,
    ) -> TimerHandle {
        let (id, gen) = match self.free.pop() {
            Some(id) => {
                let e = &mut self.entries[id as usize];
                e.at = at;
                e.sched = sched;
                e.seq = seq;
                e.agent = agent;
                e.token = token;
                (id, e.gen)
            }
            None => {
                let id = u32::try_from(self.entries.len()).expect("timer slab overflow");
                self.entries.push(TimerEntry {
                    at,
                    sched,
                    seq,
                    agent,
                    token,
                    gen: 0,
                });
                (id, 0)
            }
        };
        self.live += 1;
        self.place(id, gen, at);
        self.note_insert(at, sched, seq);
        TimerHandle { id, gen }
    }

    /// Files `(id, gen)` into the wheel slot (or the front heap) where a
    /// timer due at `at` belongs, relative to the current cursor.
    fn place(&mut self, id: u32, gen: u32, at: SimTime) {
        let tick = at.as_nanos() >> TICK_SHIFT;
        if tick <= self.cursor {
            // Due within the current tick (or scheduled in the past, e.g.
            // zero-delay timers): exact ordering happens in the front heap.
            let e = &self.entries[id as usize];
            self.front.push(Reverse((e.at, e.sched, e.seq, id, gen)));
        } else {
            let diff = tick ^ self.cursor;
            let level = ((63 - diff.leading_zeros()) / LEVEL_BITS) as usize;
            debug_assert!(level < LEVELS, "44-bit ticks fit in 8 levels");
            let slot =
                ((tick >> (LEVEL_BITS as usize * level)) & (SLOTS_PER_LEVEL as u64 - 1)) as usize;
            self.slots[level * SLOTS_PER_LEVEL + slot].push((id, gen));
            self.occupied[level] |= 1u64 << slot;
        }
    }

    /// True while the handle's timer is still scheduled.
    #[inline]
    fn is_live(&self, h: TimerHandle) -> bool {
        self.entries
            .get(h.id as usize)
            .is_some_and(|e| e.gen == h.gen)
    }

    /// Cancels the handle's timer. Returns `false` if it already fired or
    /// was already cancelled.
    fn cancel(&mut self, h: TimerHandle) -> bool {
        let Some(e) = self.entries.get_mut(h.id as usize) else {
            return false;
        };
        if e.gen != h.gen {
            return false;
        }
        if self.min_key == Ok(Some((e.at, e.sched, e.seq))) {
            self.min_key = Err(());
        }
        let e = &mut self.entries[h.id as usize];
        // The (id, gen) pair still sits in some slot or the front heap;
        // bumping the generation turns it stale there.
        e.gen = e.gen.wrapping_add(1);
        self.free.push(h.id);
        self.live -= 1;
        true
    }

    /// Earliest occupied `(level, slot)`, exploiting that lower levels fire
    /// strictly before higher ones and lower slots before higher ones.
    fn earliest_slot(&self) -> Option<(usize, usize)> {
        for (level, &occ) in self.occupied.iter().enumerate() {
            if occ != 0 {
                return Some((level, occ.trailing_zeros() as usize));
            }
        }
        None
    }

    /// Advances the wheel until the front heap's head is a live timer (or
    /// the wheel is empty). Cursor motion only redistributes entries to
    /// strictly lower levels, so this terminates.
    #[inline]
    fn refill_front(&mut self) {
        loop {
            while let Some(&Reverse((_, _, _, id, gen))) = self.front.peek() {
                if self.entries[id as usize].gen == gen {
                    return; // live head
                }
                self.front.pop(); // cancelled; discard the stale pair
            }
            let Some((level, slot)) = self.earliest_slot() else {
                return; // wheel empty
            };
            let idx = level * SLOTS_PER_LEVEL + slot;
            self.occupied[level] &= !(1u64 << slot);
            let shift = LEVEL_BITS as usize * level;
            // Jump the cursor to the earliest tick this slot can hold: the
            // cursor's digits above this level, the slot digit, zeros below.
            let high_mask = !((1u64 << (shift + LEVEL_BITS as usize)) - 1);
            let tick_lo = (self.cursor & high_mask) | ((slot as u64) << shift);
            debug_assert!(tick_lo > self.cursor);
            self.cursor = tick_lo;
            let pairs = std::mem::take(&mut self.slots[idx]);
            for (id, gen) in pairs {
                if self.entries[id as usize].gen != gen {
                    continue; // cancelled while parked
                }
                let at = self.entries[id as usize].at;
                self.place(id, gen, at);
            }
        }
    }

    /// `(at, sched, seq)` of the earliest live timer.
    #[inline]
    fn peek(&mut self) -> Option<(SimTime, SimTime, u64)> {
        if let Ok(k) = self.min_key {
            return k;
        }
        self.refill_front();
        let k = self
            .front
            .peek()
            .map(|&Reverse((at, sched, seq, _, _))| (at, sched, seq));
        self.min_key = Ok(k);
        k
    }

    /// Folds a freshly inserted key into the cached minimum.
    #[inline]
    fn note_insert(&mut self, at: SimTime, sched: SimTime, seq: u64) {
        if let Ok(cur) = self.min_key {
            let k = (at, sched, seq);
            self.min_key = Ok(Some(match cur {
                Some(c) if c < k => c,
                _ => k,
            }));
        }
    }

    /// Removes and returns the earliest live timer.
    #[inline]
    fn pop(&mut self) -> Option<(SimTime, u64, AgentId, u64)> {
        self.refill_front();
        let Reverse((at, _, seq, id, gen)) = self.front.pop()?;
        let e = &mut self.entries[id as usize];
        debug_assert_eq!(e.gen, gen, "refill_front leaves a live head");
        let (agent, token) = (e.agent, e.token);
        e.gen = e.gen.wrapping_add(1);
        self.free.push(id);
        self.live -= 1;
        self.min_key = Err(());
        Some((at, seq, agent, token))
    }
}

/// Priority queue of scheduled events with FIFO tie-breaking.
///
/// See the [module docs](self) for the two-tier design. The public
/// contract is unchanged from the plain-heap implementation: events pop in
/// `(time, scheduling order)` — with the addition of real timer
/// cancellation via [`schedule_timer`](Self::schedule_timer) /
/// [`cancel_timer`](Self::cancel_timer).
#[derive(Debug, Clone, Default)]
pub struct EventQueue {
    packets: PacketWheel,
    timers: TimerWheel,
    next_seq: u64,
    /// The scheduling clock: the engine mirrors its own clock here before
    /// dispatching, so every `schedule` call records *when* it was made.
    /// `sched` never regresses, which keeps `(at, sched, seq)` ordering
    /// identical to the historical `(at, seq)` order for events scheduled
    /// through one queue.
    now: SimTime,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the scheduling clock recorded on subsequent `schedule` calls.
    /// The engine calls this whenever its own clock advances.
    #[inline]
    pub fn set_now(&mut self, now: SimTime) {
        self.now = now;
    }

    #[inline]
    fn take_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Schedules `event` to fire at `at`.
    ///
    /// [`Event::Timer`]s are routed to the timer wheel (without a
    /// cancellation handle — use [`schedule_timer`](Self::schedule_timer)
    /// to keep one); everything else goes to the packet wheel. Ordering is
    /// identical either way.
    #[inline]
    pub fn schedule(&mut self, at: SimTime, event: Event) {
        let seq = self.take_seq();
        let sched = self.now;
        match event {
            Event::Timer { agent, token } => {
                self.timers.insert(at, sched, seq, agent, token);
            }
            event => self.packets.push(Scheduled {
                at,
                sched,
                seq,
                event,
            }),
        }
    }

    /// Schedules `event` to fire at `at` with an explicit scheduling
    /// timestamp, as if it had been scheduled at `sched` on this queue.
    ///
    /// This is the cross-shard injection point: a packet handed over from
    /// another shard carries the clock time of its sending shard, so it
    /// sorts among same-instant local events exactly where an unsharded
    /// run would have placed it. Not meaningful for [`Event::Timer`].
    #[inline]
    pub fn inject(&mut self, at: SimTime, sched: SimTime, event: Event) {
        debug_assert!(
            !matches!(event, Event::Timer { .. }),
            "cross-queue injection is for packet-tier events"
        );
        let seq = self.take_seq();
        self.packets.push(Scheduled {
            at,
            sched,
            seq,
            event,
        });
    }

    /// Schedules a timer for `agent` at `at` and returns a handle that can
    /// cancel it before it fires.
    pub fn schedule_timer(&mut self, at: SimTime, agent: AgentId, token: u64) -> TimerHandle {
        let seq = self.take_seq();
        let sched = self.now;
        self.timers.insert(at, sched, seq, agent, token)
    }

    /// Cancels a pending timer. Returns `true` if the timer was still
    /// pending (and is now gone), `false` if it had already fired or been
    /// cancelled. Never affects a recycled slot: handles are
    /// generation-checked.
    pub fn cancel_timer(&mut self, handle: TimerHandle) -> bool {
        self.timers.cancel(handle)
    }

    /// Whether the timer behind `handle` is still pending.
    pub fn timer_is_live(&self, handle: TimerHandle) -> bool {
        self.timers.is_live(handle)
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.pop_before(SimTime::from_nanos(u64::MAX))
    }

    /// Removes and returns the earliest event whose time is `<= horizon`.
    ///
    /// Equivalent to `peek_time` + `pop` fused into one peek round — the
    /// simulator's main loop calls this once per event instead of paying
    /// two cross-tier peeks.
    #[inline]
    pub fn pop_before(&mut self, horizon: SimTime) -> Option<(SimTime, Event)> {
        self.pop_when(|at| at <= horizon)
    }

    /// Removes and returns the earliest event whose time is strictly
    /// `< end`.
    ///
    /// This is the sharded engine's round primitive: a conservative
    /// lookahead window `[s, s + L)` is half-open, because a cross-shard
    /// packet generated inside the window can fire exactly at `s + L` and
    /// must wait for injection before that instant is processed.
    #[inline]
    pub fn pop_strictly_before(&mut self, end: SimTime) -> Option<(SimTime, Event)> {
        self.pop_when(|at| at < end)
    }

    #[inline]
    fn pop_when(&mut self, admit: impl Fn(SimTime) -> bool) -> Option<(SimTime, Event)> {
        let packet_key = self.packets.peek().map(|s| (s.at, s.sched, s.seq));
        let timer_key = self.timers.peek();
        let take_packet = match (packet_key, timer_key) {
            (None, None) => return None,
            (Some(p), None) => {
                if !admit(p.0) {
                    return None;
                }
                true
            }
            (None, Some(t)) => {
                if !admit(t.0) {
                    return None;
                }
                false
            }
            // Seqs are globally unique, so the keys never tie.
            (Some(p), Some(t)) => {
                if !admit(p.min(t).0) {
                    return None;
                }
                p < t
            }
        };
        if take_packet {
            self.packets.pop().map(|s| (s.at, s.event))
        } else {
            self.timers
                .pop()
                .map(|(at, _, agent, token)| (at, Event::Timer { agent, token }))
        }
    }

    /// The timestamp of the earliest pending event.
    ///
    /// Takes `&mut self` because peeking may advance the timer wheel
    /// (moving due timers into its front heap); the observable queue
    /// contents are unchanged.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        let p = self.packets.peek().map(|s| s.at);
        let t = self.timers.peek().map(|(at, _, _)| at);
        match (p, t) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.packets.len() + self.timers.live
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(token: u64) -> Event {
        Event::Timer {
            agent: AgentId::from_u32(0),
            token,
        }
    }

    fn link(id: u64) -> Event {
        Event::LinkTxDone {
            link: LinkId::from_u32(id as u32),
        }
    }

    fn drain_tokens(q: &mut EventQueue) -> Vec<u64> {
        std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Timer { token, .. } => token,
                Event::LinkTxDone { link } => u64::from(link.as_u32()),
                _ => unreachable!(),
            })
            .collect()
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), timer(3));
        q.schedule(SimTime::from_millis(10), timer(1));
        q.schedule(SimTime::from_millis(20), timer(2));
        assert_eq!(drain_tokens(&mut q), vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_fire_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for token in 0..100 {
            q.schedule(t, timer(token));
        }
        assert_eq!(drain_tokens(&mut q), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn simultaneous_cross_tier_events_fire_fifo() {
        // Timers (wheel tier) and link events (packet tier) at the same
        // instant must still interleave in scheduling order.
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..50u64 {
            if i % 2 == 0 {
                q.schedule(t, timer(i));
            } else {
                q.schedule(t, link(i));
            }
        }
        assert_eq!(drain_tokens(&mut q), (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_millis(9), timer(0));
        q.schedule(SimTime::from_millis(4), timer(1));
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(4)));
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }

    #[test]
    fn cancelled_timer_never_fires() {
        let mut q = EventQueue::new();
        let h = q.schedule_timer(SimTime::from_millis(10), AgentId::from_u32(0), 7);
        q.schedule(SimTime::from_millis(20), timer(8));
        assert!(q.timer_is_live(h));
        assert!(q.cancel_timer(h));
        assert!(!q.timer_is_live(h));
        assert!(!q.cancel_timer(h), "double-cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(drain_tokens(&mut q), vec![8]);
    }

    #[test]
    fn stale_handle_cannot_cancel_recycled_slot() {
        let mut q = EventQueue::new();
        let a = AgentId::from_u32(0);
        let h1 = q.schedule_timer(SimTime::from_millis(1), a, 1);
        assert!(q.cancel_timer(h1));
        // The slab slot is recycled for a new timer; the old handle must
        // not be able to touch it.
        let h2 = q.schedule_timer(SimTime::from_millis(2), a, 2);
        assert!(!q.cancel_timer(h1));
        assert!(q.timer_is_live(h2));
        assert_eq!(drain_tokens(&mut q), vec![2]);
    }

    #[test]
    fn firing_consumes_the_handle() {
        let mut q = EventQueue::new();
        let h = q.schedule_timer(SimTime::from_millis(3), AgentId::from_u32(9), 42);
        assert_eq!(
            q.pop(),
            Some((
                SimTime::from_millis(3),
                Event::Timer {
                    agent: AgentId::from_u32(9),
                    token: 42
                }
            ))
        );
        assert!(!q.timer_is_live(h));
        assert!(!q.cancel_timer(h));
    }

    #[test]
    fn strict_pop_respects_the_half_open_window() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(5), timer(1));
        q.schedule(SimTime::from_millis(10), timer(2));
        assert_eq!(
            q.pop_strictly_before(SimTime::from_millis(10)),
            Some((SimTime::from_millis(5), timer(1)))
        );
        assert_eq!(q.pop_strictly_before(SimTime::from_millis(10)), None);
        assert_eq!(
            q.pop_before(SimTime::from_millis(10)),
            Some((SimTime::from_millis(10), timer(2)))
        );
    }

    #[test]
    fn injected_events_sort_by_scheduling_time_among_ties() {
        // Local events scheduled at now=14 for t=20; an injection that was
        // scheduled (on another shard) at t=12 must pop before them, and
        // one scheduled at t=16 after them, regardless of insertion order.
        let mut q = EventQueue::new();
        q.set_now(SimTime::from_millis(14));
        q.schedule(SimTime::from_millis(20), link(100));
        q.schedule(SimTime::from_millis(20), link(101));
        q.inject(
            SimTime::from_millis(20),
            SimTime::from_millis(16),
            link(300),
        );
        q.inject(SimTime::from_millis(20), SimTime::from_millis(12), link(50));
        assert_eq!(drain_tokens(&mut q), vec![50, 100, 101, 300]);
    }

    /// One wheel tick in nanoseconds.
    const TICK: u64 = 1 << TICK_SHIFT;

    #[test]
    fn wheel_cascade_boundaries() {
        // Explicit cascade coverage: same-tick (sub-tick ordering), exact
        // slot edges of every level, far-future ticks in the top level, and
        // zero-delay timers, all interleaved with a packet-tier event.
        let mut times: Vec<u64> = vec![0, 1, TICK - 1, TICK, TICK + 1];
        for level in 1..LEVELS as u32 {
            let edge = TICK << (LEVEL_BITS * level);
            times.extend_from_slice(&[edge - 1, edge, edge + 1]);
        }
        times.push(u64::MAX / 2); // far future: top-level slot
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), timer(i as u64));
        }
        q.schedule(SimTime::from_nanos(TICK + 1), link(1_000));
        let mut expected: Vec<(u64, u64)> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, i as u64))
            .collect();
        expected.push((TICK + 1, 1_000));
        // Stable sort on time preserves scheduling order for ties, which is
        // exactly the queue's contract.
        expected.sort_by_key(|&(t, _)| t);
        let got: Vec<(u64, u64)> = std::iter::from_fn(|| q.pop())
            .map(|(at, e)| {
                let id = match e {
                    Event::Timer { token, .. } => token,
                    Event::LinkTxDone { link } => u64::from(link.as_u32()),
                    _ => unreachable!(),
                };
                (at.as_nanos(), id)
            })
            .collect();
        assert_eq!(got, expected);
    }

    /// Naive model: a vector sorted by (time, seq), with cancellation.
    #[derive(Default)]
    struct Model {
        entries: Vec<(u64, u64, u64)>, // (time, seq, token)
        next_seq: u64,
    }

    impl Model {
        fn schedule(&mut self, t: u64, token: u64) -> u64 {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.entries.push((t, seq, token));
            seq
        }
        fn cancel(&mut self, seq: u64) {
            self.entries.retain(|&(_, s, _)| s != seq);
        }
        fn pop(&mut self) -> Option<(u64, u64)> {
            let i = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|&(_, &(t, s, _))| (t, s))
                .map(|(i, _)| i)?;
            let (t, _, token) = self.entries.swap_remove(i);
            Some((t, token))
        }
    }

    proptest::proptest! {
        /// Property: regardless of insertion order, events pop sorted by
        /// (time, insertion sequence).
        #[test]
        fn prop_pop_order_is_stable_sort(times in proptest::collection::vec(0u64..1_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_nanos(t), timer(i as u64));
            }
            let mut expected: Vec<(u64, u64)> =
                times.iter().enumerate().map(|(i, &t)| (t, i as u64)).collect();
            expected.sort();
            let got: Vec<(u64, u64)> = std::iter::from_fn(|| q.pop())
                .map(|(at, e)| match e {
                    Event::Timer { token, .. } => (at.as_nanos(), token),
                    _ => unreachable!(),
                })
                .collect();
            proptest::prop_assert_eq!(got, expected);
        }

        /// Property: arbitrary interleavings of schedule / cancel / pop
        /// across both tiers agree with the naive sorted-Vec model.
        ///
        /// Ops: (kind % 4, value). 0 ⇒ schedule timer at `value`,
        /// 1 ⇒ schedule link event at `value`, 2 ⇒ cancel the
        /// (value % live)-th outstanding timer handle, 3 ⇒ pop.
        /// Times span several wheel levels so cascades are exercised.
        #[test]
        fn prop_schedule_cancel_pop_matches_model(
            ops in proptest::collection::vec((0u8..4, 0u64..(1u64 << 33)), 1..300)
        ) {
            let mut q = EventQueue::new();
            let mut model = Model::default();
            // Outstanding (handle, model-seq) pairs for cancellation.
            let mut handles: Vec<(TimerHandle, u64)> = Vec::new();
            let mut token = 0u64;
            for &(kind, value) in &ops {
                match kind {
                    0 => {
                        let at = SimTime::from_nanos(value);
                        let h = q.schedule_timer(at, AgentId::from_u32(0), token);
                        let seq = model.schedule(value, token);
                        handles.push((h, seq));
                        token += 1;
                    }
                    1 => {
                        q.schedule(SimTime::from_nanos(value), link(token));
                        model.schedule(value, token);
                        token += 1;
                    }
                    2 if !handles.is_empty() => {
                        let i = (value as usize) % handles.len();
                        let (h, seq) = handles.swap_remove(i);
                        let was_live = q.timer_is_live(h);
                        proptest::prop_assert_eq!(q.cancel_timer(h), was_live);
                        model.cancel(seq);
                    }
                    _ => {
                        let got = q.pop().map(|(at, e)| {
                            let tok = match e {
                                Event::Timer { token, .. } => token,
                                Event::LinkTxDone { link } => u64::from(link.as_u32()),
                                _ => unreachable!(),
                            };
                            (at.as_nanos(), tok)
                        });
                        // Popping may consume a timer whose handle we still
                        // hold; it goes dead, which the `was_live` check on
                        // a later cancel op tolerates.
                        proptest::prop_assert_eq!(got, model.pop());
                    }
                }
                proptest::prop_assert_eq!(q.len(), model.entries.len());
            }
            // Drain both to the end.
            loop {
                let got = q.pop().map(|(at, e)| {
                    let tok = match e {
                        Event::Timer { token, .. } => token,
                        Event::LinkTxDone { link } => u64::from(link.as_u32()),
                        _ => unreachable!(),
                    };
                    (at.as_nanos(), tok)
                });
                let want = model.pop();
                proptest::prop_assert_eq!(got, want);
                if want.is_none() {
                    break;
                }
            }
        }
    }
}
