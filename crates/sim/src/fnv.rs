//! FNV-1a hashing for the engine's small-key hot-path maps.
//!
//! `std`'s default SipHash is DoS-resistant but pays for it on every
//! lookup; the engine's maps are keyed by internal ids (`NodeId`,
//! `FlowId`) that no external party controls, so the cheap FNV-1a mix is
//! both safe and measurably faster on the per-packet delivery path.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A 64-bit FNV-1a [`Hasher`].
#[derive(Debug, Clone)]
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(FNV_OFFSET)
    }
}

impl Hasher for FnvHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

/// A `HashMap` using [`FnvHasher`].
pub type FnvHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FnvHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Classic FNV-1a test vectors.
        let hash = |s: &str| {
            let mut h = FnvHasher::default();
            h.write(s.as_bytes());
            h.finish()
        };
        assert_eq!(hash(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(hash("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(hash("foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn map_works_with_tuple_keys() {
        let mut m: FnvHashMap<(u32, u32), u64> = FnvHashMap::default();
        m.insert((1, 2), 3);
        m.insert((2, 1), 4);
        assert_eq!(m.get(&(1, 2)), Some(&3));
        assert_eq!(m.get(&(2, 1)), Some(&4));
        assert_eq!(m.len(), 2);
    }
}
