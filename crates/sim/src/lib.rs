//! # pdos-sim — a deterministic packet-level network simulator
//!
//! This crate is the simulation substrate of the PDoS-lab workspace: a
//! compact, deterministic discrete-event simulator playing the role ns-2
//! plays in Luo & Chang's DSN 2005 paper *"Optimizing the Pulsing
//! Denial-of-Service Attacks"*. Everything runs in simulated time; no real
//! network traffic is ever produced.
//!
//! ## Model
//!
//! * **Nodes** are hosts (which carry [`agent::Agent`] state machines) or
//!   routers (pure forwarders).
//! * **Links** are simplex: a serializing transmitter at a fixed
//!   [`units::BitsPerSec`] rate, a fixed propagation delay, and a pluggable
//!   [`queue::QueueDiscipline`] (DropTail or RED with `gentle_`).
//! * **Routing** is static minimum-hop, computed at build time.
//! * **Time** is integer nanoseconds; ties in the event queue resolve in
//!   scheduling order, so every run is exactly reproducible from its seeds.
//!
//! ## Example
//!
//! ```
//! use pdos_sim::prelude::*;
//!
//! let mut t = TopologyBuilder::with_seed(1);
//! let a = t.add_host("a");
//! let b = t.add_host("b");
//! t.add_duplex_link(a, b, BitsPerSec::from_mbps(10.0),
//!                   SimDuration::from_millis(5),
//!                   QueueSpec::DropTail { capacity: 100 });
//! let mut sim = t.build()?;
//! sim.run_until(SimTime::from_secs(10));
//! assert_eq!(sim.now(), SimTime::from_secs(10));
//! # Ok::<(), pdos_sim::topology::BuildError>(())
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod agent;
pub mod check;
pub mod engine;
pub mod event;
pub mod fnv;
pub mod link;
pub mod metrics;
pub mod node;
pub mod packet;
pub mod profile;
pub mod queue;
pub mod routing;
pub mod shard;
pub mod tap;
pub mod time;
pub mod topology;
pub mod trace;
pub mod units;

/// Convenient re-exports of the types almost every user touches.
pub mod prelude {
    pub use crate::agent::{Agent, AgentCtx, AgentId};
    pub use crate::check::{Violation, ViolationKind};
    pub use crate::engine::{CheckpointError, SimCheckpoint, SimStats, Simulator};
    pub use crate::link::{Impairments, LinkId};
    pub use crate::node::NodeId;
    pub use crate::packet::{FlowId, Packet, PacketKind};
    pub use crate::queue::{AccConfig, QueueSpec, RedConfig};
    pub use crate::shard::ShardPlan;
    pub use crate::tap::DetectorTap;
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::topology::TopologyBuilder;
    pub use crate::trace::{TraceFilter, TraceId};
    pub use crate::units::{BitsPerSec, Bytes};
}
