//! Simplex links: a serializing transmitter, a propagation delay, and an
//! ingress queue discipline.

use crate::check::{Violation, ViolationKind};
use crate::node::NodeId;
use crate::packet::Packet;
use crate::queue::{AnyQueue, QueueDiscipline};
use crate::time::{SimDuration, SimTime};
use crate::units::{BitsPerSec, Bytes};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Identifies a simplex link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(u32);

impl LinkId {
    /// Creates a link id from a raw index.
    pub const fn from_u32(v: u32) -> Self {
        LinkId(v)
    }

    /// The raw index.
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// The raw index as `usize`, for table lookups.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "link{}", self.0)
    }
}

/// Counters kept per link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Packets offered to the link (before any queue drop).
    pub offered_packets: u64,
    /// Bytes offered to the link.
    pub offered_bytes: Bytes,
    /// Packets fully serialized onto the wire.
    pub tx_packets: u64,
    /// Bytes fully serialized onto the wire.
    pub tx_bytes: Bytes,
    /// Packets destroyed by the random-loss impairment.
    pub impairment_drops: u64,
}

/// Link impairments in the style of Dummynet's `plr`/`jitter` options —
/// the knobs the paper's test-bed tool exposes beyond bandwidth+delay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Impairments {
    /// Independent per-packet loss probability in `[0, 1)`.
    pub loss_prob: f64,
    /// Uniform extra propagation delay in `[0, jitter]` per packet.
    pub jitter: SimDuration,
}

impl Impairments {
    /// A clean link (no loss, no jitter).
    pub const NONE: Impairments = Impairments {
        loss_prob: 0.0,
        jitter: SimDuration::ZERO,
    };

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a message when `loss_prob` is outside `[0, 1)`.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..1.0).contains(&self.loss_prob) {
            return Err(format!(
                "loss probability must be in [0,1), got {}",
                self.loss_prob
            ));
        }
        Ok(())
    }

    /// Whether the link is clean.
    pub fn is_none(&self) -> bool {
        self.loss_prob == 0.0 && self.jitter.is_zero()
    }
}

/// What happened when a packet was offered to a link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkAccept {
    /// The queue discipline accepted the packet. When the transmitter was
    /// idle, `tx_done` carries the serialization-complete instant (the
    /// engine schedules `LinkTxDone` there); `marked` reports a fresh ECN
    /// congestion-experienced mark.
    Accepted {
        /// Completion time of the transmission this arrival started, when
        /// the transmitter was idle.
        tx_done: Option<SimTime>,
        /// Whether the discipline applied an ECN mark.
        marked: bool,
    },
    /// The queue discipline dropped the packet.
    Dropped,
}

/// A simplex link with a store-and-forward transmitter.
///
/// At most one packet serializes at a time; arrivals during transmission go
/// through the queue discipline. When serialization finishes the packet
/// propagates for `delay` and the next queued packet (if any) begins
/// serializing.
pub struct Link {
    id: LinkId,
    src: NodeId,
    dst: NodeId,
    bandwidth: BitsPerSec,
    delay: SimDuration,
    queue: AnyQueue,
    impairments: Impairments,
    rng: SmallRng,
    in_flight: Option<Packet>,
    stats: LinkStats,
    /// Memo of the last serialization-time computation: traffic is
    /// dominated by a handful of distinct packet sizes, and the f64
    /// division in [`BitsPerSec::tx_time`] shows up in event-loop
    /// profiles. Same size in → same duration out, so this is exact.
    tx_memo: (Bytes, SimDuration),
}

impl fmt::Debug for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Link")
            .field("id", &self.id)
            .field("src", &self.src)
            .field("dst", &self.dst)
            .field("bandwidth", &self.bandwidth)
            .field("delay", &self.delay)
            .field("queue", &self.queue.name())
            .field("backlog", &self.queue.len_packets())
            .finish()
    }
}

impl Link {
    /// Creates a link. The engine is the only caller; scenarios go through
    /// the topology builder.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth` is zero.
    pub fn new(
        id: LinkId,
        src: NodeId,
        dst: NodeId,
        bandwidth: BitsPerSec,
        delay: SimDuration,
        queue: impl Into<AnyQueue>,
    ) -> Self {
        assert!(!bandwidth.is_zero(), "link bandwidth must be positive");
        Link {
            id,
            src,
            dst,
            bandwidth,
            delay,
            queue: queue.into(),
            impairments: Impairments::NONE,
            rng: SmallRng::seed_from_u64(id.as_u32() as u64 + 0x5EED),
            in_flight: None,
            stats: LinkStats::default(),
            tx_memo: (Bytes::from_u64(0), SimDuration::ZERO),
        }
    }

    /// [`BitsPerSec::tx_time`] with a one-entry memo on the packet size.
    #[inline]
    fn tx_time(&mut self, size: Bytes) -> SimDuration {
        if self.tx_memo.0 != size {
            self.tx_memo = (size, self.bandwidth.tx_time(size));
        }
        self.tx_memo.1
    }

    /// Installs Dummynet-style impairments (random loss and delay
    /// jitter), with randomness seeded by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the impairments fail [`Impairments::validate`].
    pub fn set_impairments(&mut self, impairments: Impairments, seed: u64) {
        if let Err(e) = impairments.validate() {
            panic!("invalid link impairments: {e}");
        }
        self.impairments = impairments;
        self.rng = SmallRng::seed_from_u64(seed);
    }

    /// The impairments in force.
    pub fn impairments(&self) -> Impairments {
        self.impairments
    }

    /// The propagation delay for the next delivery, including jitter.
    pub(crate) fn sample_delay(&mut self) -> SimDuration {
        if self.impairments.jitter.is_zero() {
            self.delay
        } else {
            let extra = self.impairments.jitter.as_nanos();
            self.delay + SimDuration::from_nanos(self.rng.random_range(0..=extra))
        }
    }

    /// This link's id.
    pub fn id(&self) -> LinkId {
        self.id
    }

    /// Upstream node.
    pub fn src(&self) -> NodeId {
        self.src
    }

    /// Downstream node.
    pub fn dst(&self) -> NodeId {
        self.dst
    }

    /// Serialization rate.
    pub fn bandwidth(&self) -> BitsPerSec {
        self.bandwidth
    }

    /// Propagation delay.
    pub fn delay(&self) -> SimDuration {
        self.delay
    }

    /// Counters.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Packets dropped by the queue discipline.
    pub fn drops(&self) -> u64 {
        self.queue.drops()
    }

    /// Current backlog in packets (not counting the in-flight packet).
    pub fn backlog_packets(&self) -> usize {
        self.queue.len_packets()
    }

    /// Packets currently being serialized (0 or 1).
    pub fn in_flight_packets(&self) -> usize {
        usize::from(self.in_flight.is_some())
    }

    /// Audits this link's conservation and occupancy invariants at `now`,
    /// returning any breaches (empty on a healthy link).
    ///
    /// The conservation identity is
    /// `offered = transmitted + queue drops + impairment drops + backlog +
    /// in-flight`: every packet ever offered is still resident, already on
    /// the wire, or accounted for by exactly one drop counter.
    pub fn audit(&self, now: SimTime) -> Vec<Violation> {
        let mut out = Vec::new();
        let backlog = self.queue.len_packets();
        let capacity = self.queue.capacity_packets();
        if backlog > capacity {
            out.push(Violation {
                at: now,
                entity: self.id.to_string(),
                kind: ViolationKind::QueueOccupancy,
                detail: format!("backlog {backlog} packets exceeds capacity {capacity}"),
            });
        }
        let resident = backlog as u64 + self.in_flight_packets() as u64;
        let accounted =
            self.stats.tx_packets + self.queue.drops() + self.stats.impairment_drops + resident;
        if self.stats.offered_packets != accounted {
            out.push(Violation {
                at: now,
                entity: self.id.to_string(),
                kind: ViolationKind::PacketConservation,
                detail: format!(
                    "offered {} != tx {} + queue drops {} + impairment drops {} + resident \
                     {resident}",
                    self.stats.offered_packets,
                    self.stats.tx_packets,
                    self.queue.drops(),
                    self.stats.impairment_drops,
                ),
            });
        }
        out
    }

    /// Test hook: inflates the offered-packet counter without enqueueing,
    /// seeding a packet-conservation fault for the checkers.
    #[doc(hidden)]
    pub fn corrupt_accounting_for_test(&mut self) {
        self.stats.offered_packets += 1;
    }

    /// Test hook: zeroes the link counters, modelling a checkpoint that
    /// failed to capture `Link::stats` — the conservation audit must then
    /// flag the link on its next packet.
    #[doc(hidden)]
    pub fn reset_stats_for_test(&mut self) {
        self.stats = LinkStats::default();
    }

    /// Read-only access to the queue discipline (for discipline-specific
    /// inspection in tests and traces).
    pub fn queue(&self) -> &dyn QueueDiscipline {
        &self.queue
    }

    /// Deep-copies this link for checkpoint/fork, or `None` when the
    /// queue discipline is an un-cloneable [`AnyQueue::Custom`]. The copy
    /// carries the full transmitter state — in-flight packet, counters,
    /// impairment RNG position and tx-time memo — so a forked link
    /// produces the byte-identical event sequence a cold link would.
    pub(crate) fn try_clone(&self) -> Option<Link> {
        Some(Link {
            id: self.id,
            src: self.src,
            dst: self.dst,
            bandwidth: self.bandwidth,
            delay: self.delay,
            queue: self.queue.try_clone()?,
            impairments: self.impairments,
            rng: self.rng.clone(),
            in_flight: self.in_flight,
            stats: self.stats,
            tx_memo: self.tx_memo,
        })
    }

    /// Offers `packet` to the link at time `now`.
    ///
    /// Every arrival goes through the queue discipline — even when the
    /// transmitter is idle — so RED's average-queue estimator and ECN
    /// marking observe the full arrival process.
    pub fn accept(&mut self, packet: Packet, now: SimTime) -> LinkAccept {
        self.stats.offered_packets += 1;
        self.stats.offered_bytes = self.stats.offered_bytes.saturating_add(packet.size);
        if self.impairments.loss_prob > 0.0 && self.rng.random::<f64>() < self.impairments.loss_prob
        {
            self.stats.impairment_drops += 1;
            return LinkAccept::Dropped;
        }
        if self.in_flight.is_none() && self.queue.is_empty_droptail() {
            // Idle transmitter, empty tail-drop buffer: the enqueue/dequeue
            // round-trip below is an identity (see `is_empty_droptail`), so
            // start serializing directly and skip two packet copies.
            let done_at = now + self.tx_time(packet.size);
            self.in_flight = Some(packet);
            return LinkAccept::Accepted {
                tx_done: Some(done_at),
                marked: false,
            };
        }
        let outcome = self.queue.enqueue(packet, now);
        if outcome.is_drop() {
            return LinkAccept::Dropped;
        }
        let marked = outcome == crate::queue::EnqueueOutcome::EnqueuedMarked;
        let tx_done = if self.in_flight.is_none() {
            let next = self
                .queue
                .dequeue(now)
                .expect("discipline accepted a packet but has none to serve");
            let done_at = now + self.tx_time(next.size);
            self.in_flight = Some(next);
            Some(done_at)
        } else {
            None
        };
        LinkAccept::Accepted { tx_done, marked }
    }

    /// Completes the current transmission at `now`.
    ///
    /// Returns the packet to deliver (after [`Link::delay`]) and, when the
    /// queue was non-empty, the completion time of the next transmission.
    ///
    /// # Panics
    ///
    /// Panics if no transmission was in flight — the engine only calls this
    /// in response to a `LinkTxDone` it scheduled.
    pub fn tx_complete(&mut self, now: SimTime) -> (Packet, Option<SimTime>) {
        let done = self
            .in_flight
            .take()
            .expect("tx_complete without an in-flight packet");
        self.stats.tx_packets += 1;
        self.stats.tx_bytes = self.stats.tx_bytes.saturating_add(done.size);
        let next_done_at = match self.queue.dequeue(now) {
            Some(next) => {
                let at = now + self.tx_time(next.size);
                self.in_flight = Some(next);
                Some(at)
            }
            None => None,
        };
        (done, next_done_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, PacketKind};
    use crate::queue::DropTailQueue;

    fn link(capacity: usize) -> Link {
        Link::new(
            LinkId::from_u32(0),
            NodeId::from_u32(0),
            NodeId::from_u32(1),
            BitsPerSec::from_mbps(15.0),
            SimDuration::from_millis(10),
            DropTailQueue::new(capacity),
        )
    }

    fn pkt(size: u64) -> Packet {
        Packet::new(
            FlowId::from_u32(0),
            NodeId::from_u32(0),
            NodeId::from_u32(1),
            Bytes::from_u64(size),
            PacketKind::Background,
        )
    }

    #[test]
    fn idle_link_starts_transmitting_immediately() {
        let mut l = link(4);
        // 1500 B at 15 Mbps = 0.8 ms.
        match l.accept(pkt(1500), SimTime::ZERO) {
            LinkAccept::Accepted {
                tx_done: Some(at),
                marked: false,
            } => assert_eq!(at, SimTime::from_nanos(800_000)),
            other => panic!("expected an immediate transmission, got {other:?}"),
        }
    }

    #[test]
    fn busy_link_queues_then_chains_transmissions() {
        let mut l = link(4);
        assert!(matches!(
            l.accept(pkt(1500), SimTime::ZERO),
            LinkAccept::Accepted {
                tx_done: Some(_),
                ..
            }
        ));
        assert_eq!(
            l.accept(pkt(1500), SimTime::ZERO),
            LinkAccept::Accepted {
                tx_done: None,
                marked: false
            }
        );
        assert_eq!(l.backlog_packets(), 1);

        let t1 = SimTime::from_nanos(800_000);
        let (sent, next) = l.tx_complete(t1);
        assert_eq!(sent.size.as_u64(), 1500);
        // Second packet starts serializing back-to-back.
        assert_eq!(next, Some(SimTime::from_nanos(1_600_000)));
        assert_eq!(l.backlog_packets(), 0);

        let (sent2, next2) = l.tx_complete(SimTime::from_nanos(1_600_000));
        assert_eq!(sent2.size.as_u64(), 1500);
        assert_eq!(next2, None);
    }

    #[test]
    fn full_queue_drops_and_stats_track_offered_vs_tx() {
        let mut l = link(1);
        assert!(matches!(
            l.accept(pkt(100), SimTime::ZERO),
            LinkAccept::Accepted {
                tx_done: Some(_),
                ..
            }
        ));
        assert!(matches!(
            l.accept(pkt(100), SimTime::ZERO),
            LinkAccept::Accepted { tx_done: None, .. }
        ));
        assert_eq!(l.accept(pkt(100), SimTime::ZERO), LinkAccept::Dropped);
        assert_eq!(l.drops(), 1);
        let s = l.stats();
        assert_eq!(s.offered_packets, 3);
        assert_eq!(s.offered_bytes.as_u64(), 300);
        assert_eq!(s.tx_packets, 0);
    }

    #[test]
    #[should_panic(expected = "without an in-flight packet")]
    fn tx_complete_on_idle_link_panics() {
        link(1).tx_complete(SimTime::ZERO);
    }

    #[test]
    fn accessors() {
        let l = link(2);
        assert_eq!(l.id(), LinkId::from_u32(0));
        assert_eq!(l.src(), NodeId::from_u32(0));
        assert_eq!(l.dst(), NodeId::from_u32(1));
        assert_eq!(l.bandwidth().as_mbps(), 15.0);
        assert_eq!(l.delay(), SimDuration::from_millis(10));
        assert_eq!(l.queue().name(), "droptail");
        assert!(format!("{l:?}").contains("droptail"));
    }
}
