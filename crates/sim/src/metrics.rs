//! Engine-side metrics: dense per-link instrumentation over
//! [`pdos_metrics::MetricsRegistry`].
//!
//! Mirrors the invariant checkers' cost model (`checks:
//! Option<Box<CheckState>>`): the simulator holds `Option<Box<EngineMetrics>>`,
//! so a run without metrics pays one branch per event and nothing else.
//! All `(scope, name)` interning happens once at enable time; hot-path
//! updates are indexed writes through pre-resolved [`MetricId`]s.
//!
//! Determinism: every timestamp fed to a gauge is the simulator's own
//! virtual clock, and nothing here feeds back into the simulation —
//! enabling metrics cannot change packet timing, seeds, drops or traces.

use pdos_metrics::{MetricId, MetricsRegistry, MetricsSnapshot};

use crate::event::Event;
use crate::link::Link;
use crate::queue::{DropTailQueue, RedQueue};
use crate::time::SimTime;

/// Upper bucket edges for the RED drop-probability histogram: fine at the
/// low probabilities where RED usually operates, coarse near 1.
const RED_DROP_PROB_BOUNDS: [f64; 8] = [0.0, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0];

/// Per-link and engine-level metrics, updated from the event loop.
#[derive(Clone)]
pub struct EngineMetrics {
    registry: MetricsRegistry,
    /// Events popped from the packet wheel tier (`Deliver`, `LinkTxDone`,
    /// `AgentStart`).
    pops_packet: MetricId,
    /// Events popped from the timer wheel tier (`Timer`).
    pops_timer: MetricId,
    // Per-link ids, indexed by `LinkId::index()`.
    enqueued: Vec<MetricId>,
    dequeued: Vec<MetricId>,
    dropped: Vec<MetricId>,
    occupancy: Vec<MetricId>,
    busy: Vec<MetricId>,
    red_drop_prob: Vec<Option<MetricId>>,
    droptail_overflow: Vec<Option<MetricId>>,
}

impl EngineMetrics {
    /// Interns every per-link metric for the given topology.
    pub(crate) fn new(links: &[Link]) -> EngineMetrics {
        let mut registry = MetricsRegistry::new();
        let pops_packet = registry.counter("engine", "pops_packet_tier");
        let pops_timer = registry.counter("engine", "pops_timer_tier");
        let mut enqueued = Vec::with_capacity(links.len());
        let mut dequeued = Vec::with_capacity(links.len());
        let mut dropped = Vec::with_capacity(links.len());
        let mut occupancy = Vec::with_capacity(links.len());
        let mut busy = Vec::with_capacity(links.len());
        let mut red_drop_prob = Vec::with_capacity(links.len());
        let mut droptail_overflow = Vec::with_capacity(links.len());
        for link in links {
            let scope = format!("link/{}", link.id().index());
            enqueued.push(registry.counter(&scope, "enqueued"));
            dequeued.push(registry.counter(&scope, "dequeued"));
            dropped.push(registry.counter(&scope, "dropped"));
            occupancy.push(registry.gauge(&scope, "occupancy_pkts"));
            busy.push(registry.gauge(&scope, "tx_busy"));
            red_drop_prob.push(
                link.queue()
                    .as_any()
                    .downcast_ref::<RedQueue>()
                    .map(|_| registry.histogram(&scope, "red_drop_prob", &RED_DROP_PROB_BOUNDS)),
            );
            droptail_overflow.push(
                link.queue()
                    .as_any()
                    .downcast_ref::<DropTailQueue>()
                    .map(|_| registry.counter(&scope, "droptail_overflow")),
            );
        }
        EngineMetrics {
            registry,
            pops_packet,
            pops_timer,
            enqueued,
            dequeued,
            dropped,
            occupancy,
            busy,
            red_drop_prob,
            droptail_overflow,
        }
    }

    /// Counts one event pop on its wheel tier.
    #[inline]
    pub(crate) fn on_pop(&mut self, event: &Event) {
        let id = match event {
            Event::Timer { .. } => self.pops_timer,
            _ => self.pops_packet,
        };
        self.registry.inc(id, 1);
    }

    /// Updates a link's gauges to its current state at `now`.
    #[inline]
    fn touch_link(&mut self, link: &Link, now: SimTime) {
        let i = link.id().index();
        let held = link.backlog_packets() + link.in_flight_packets();
        self.registry
            .gauge_set(self.occupancy[i], held as f64, now.as_nanos());
        let busy = if link.in_flight_packets() > 0 {
            1.0
        } else {
            0.0
        };
        self.registry.gauge_set(self.busy[i], busy, now.as_nanos());
    }

    /// Accounts one packet offered to `link` (`accepted` per the link's
    /// verdict). An accepted packet counts as an enqueue even on the
    /// idle-DropTail fast path, which bypasses the buffer: "enqueued"
    /// means "entered the link", matching `dequeued` = "left the
    /// transmitter".
    pub(crate) fn on_accept(&mut self, link: &Link, accepted: bool, now: SimTime) {
        let i = link.id().index();
        if accepted {
            self.registry.inc(self.enqueued[i], 1);
        } else {
            self.registry.inc(self.dropped[i], 1);
            if let Some(id) = self.droptail_overflow[i] {
                self.registry.inc(id, 1);
            }
        }
        if let Some(id) = self.red_drop_prob[i] {
            if let Some(red) = link.queue().as_any().downcast_ref::<RedQueue>() {
                self.registry.observe(id, red.drop_probability());
            }
        }
        self.touch_link(link, now);
    }

    /// Accounts one serialization completion on `link`.
    pub(crate) fn on_tx_done(&mut self, link: &Link, now: SimTime) {
        self.registry.inc(self.dequeued[link.id().index()], 1);
        self.touch_link(link, now);
    }

    /// The underlying registry (for caller-supplied phase profiling).
    pub(crate) fn registry_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.registry
    }

    /// Finalizes gauges at `now` and snapshots every metric.
    pub(crate) fn snapshot(&mut self, now: SimTime) -> MetricsSnapshot {
        self.registry.finalize_gauges(now.as_nanos());
        self.registry.snapshot()
    }
}

impl std::fmt::Debug for EngineMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineMetrics")
            .field("links", &self.enqueued.len())
            .finish()
    }
}
