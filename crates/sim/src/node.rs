//! Nodes: hosts (traffic endpoints) and routers (forwarders).

use std::fmt;

/// Identifies a node in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a raw index.
    pub const fn from_u32(v: u32) -> Self {
        NodeId(v)
    }

    /// The raw index (also the node's position in the engine's node table).
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// The raw index as `usize`, for table lookups.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The role a node plays in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// An endpoint that can host traffic agents (TCP senders/sinks,
    /// attack sources). Hosts also forward, so a host with two links is
    /// legal, but typical topologies give each host exactly one access link.
    Host,
    /// A pure forwarder.
    Router,
}

/// A node record held by the engine.
#[derive(Debug, Clone)]
pub struct Node {
    id: NodeId,
    kind: NodeKind,
    label: String,
}

impl Node {
    pub(crate) fn new(id: NodeId, kind: NodeKind, label: impl Into<String>) -> Self {
        Node {
            id,
            kind,
            label: label.into(),
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// This node's role.
    pub fn kind(&self) -> NodeKind {
        self.kind
    }

    /// Human-readable label given at topology-build time.
    pub fn label(&self) -> &str {
        &self.label
    }
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.label, self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_accessors() {
        let n = Node::new(NodeId::from_u32(4), NodeKind::Router, "S");
        assert_eq!(n.id().as_u32(), 4);
        assert_eq!(n.kind(), NodeKind::Router);
        assert_eq!(n.label(), "S");
        assert_eq!(n.to_string(), "S(n4)");
    }

    #[test]
    fn node_id_index() {
        assert_eq!(NodeId::from_u32(7).index(), 7);
        assert_eq!(NodeId::from_u32(7).to_string(), "n7");
    }
}
