//! Packets and flow identifiers.
//!
//! Packets are small `Copy` values: the simulator moves millions of them per
//! run and keeping them inline (no heap payload) keeps queues cache-friendly.

use crate::node::NodeId;
use crate::time::SimTime;
use crate::units::Bytes;
use std::fmt;

/// Identifies one end-to-end flow (a TCP connection, or one attack stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(u32);

impl FlowId {
    /// Creates a flow id from a raw index.
    pub const fn from_u32(v: u32) -> Self {
        FlowId(v)
    }

    /// The raw index.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flow{}", self.0)
    }
}

/// What a packet carries. Sequence numbers count whole segments, matching
/// the segment-granularity TCP agents of ns-2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// A TCP data segment carrying segment number `seq` (0-based).
    Data {
        /// Segment sequence number.
        seq: u64,
        /// True when this transmission is a retransmission.
        retx: bool,
    },
    /// A (possibly delayed) cumulative TCP acknowledgment.
    Ack {
        /// The next segment expected by the receiver; all segments below
        /// this number have been received in order.
        cum_seq: u64,
    },
    /// Attack traffic (the simulated pulse payload). Carries no protocol
    /// state; its only effect is to occupy queue and link capacity.
    Attack,
    /// Constant-bit-rate background traffic (non-attack UDP cross-traffic).
    Background,
}

impl PacketKind {
    /// Whether this packet is TCP data (of any kind).
    pub const fn is_data(self) -> bool {
        matches!(self, PacketKind::Data { .. })
    }

    /// Whether this packet is a TCP acknowledgment.
    pub const fn is_ack(self) -> bool {
        matches!(self, PacketKind::Ack { .. })
    }

    /// Whether this packet belongs to the attack stream.
    pub const fn is_attack(self) -> bool {
        matches!(self, PacketKind::Attack)
    }
}

/// Explicit-congestion-notification state carried by a packet (RFC 3168,
/// simplified to what the simulation needs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Ecn {
    /// The flow did not negotiate ECN; congested queues drop this packet.
    #[default]
    NotCapable,
    /// ECN-capable transport: an ECN-enabled RED queue may mark instead of
    /// dropping.
    Capable,
    /// Congestion experienced: an ECN queue marked this packet.
    CongestionExperienced,
}

impl Ecn {
    /// Whether a queue is allowed to mark this packet instead of dropping.
    pub const fn is_markable(self) -> bool {
        matches!(self, Ecn::Capable)
    }

    /// Whether the congestion-experienced mark is set.
    pub const fn is_marked(self) -> bool {
        matches!(self, Ecn::CongestionExperienced)
    }
}

/// Up to two selective-acknowledgment ranges carried on an ACK
/// (RFC 2018, compacted to keep [`Packet`] `Copy` and small). Each block
/// `[start, end)` reports segments received above the cumulative point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SackBlocks {
    blocks: [(u64, u64); 2],
    len: u8,
}

impl SackBlocks {
    /// No SACK information.
    pub const EMPTY: SackBlocks = SackBlocks {
        blocks: [(0, 0); 2],
        len: 0,
    };

    /// Builds from up to two `[start, end)` ranges (extra ranges are
    /// dropped; empty ranges are skipped).
    pub fn from_ranges(ranges: &[(u64, u64)]) -> Self {
        let mut out = SackBlocks::EMPTY;
        for &(s, e) in ranges {
            if e > s && (out.len as usize) < out.blocks.len() {
                out.blocks[out.len as usize] = (s, e);
                out.len += 1;
            }
        }
        out
    }

    /// The carried ranges.
    pub fn ranges(&self) -> &[(u64, u64)] {
        &self.blocks[..self.len as usize]
    }

    /// Whether no ranges are carried.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// One simulated packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Globally unique packet id (assigned by the engine on first send).
    pub uid: u64,
    /// The flow this packet belongs to.
    pub flow: FlowId,
    /// Originating node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// On-wire size, including headers.
    pub size: Bytes,
    /// Payload classification.
    pub kind: PacketKind,
    /// ECN state.
    pub ecn: Ecn,
    /// Set on ACKs when the receiver echoes a congestion mark back to the
    /// sender (the ECE flag).
    pub ecn_echo: bool,
    /// Selective-acknowledgment ranges (meaningful on ACKs when the flow
    /// negotiated SACK; empty otherwise).
    pub sack: SackBlocks,
    /// Time the packet was handed to the network by its source agent.
    pub sent_at: SimTime,
}

impl Packet {
    /// Builds a packet with `uid = 0` (the engine assigns the real uid when
    /// the source agent emits it) and ECN disabled.
    pub fn new(flow: FlowId, src: NodeId, dst: NodeId, size: Bytes, kind: PacketKind) -> Self {
        Packet {
            uid: 0,
            flow,
            src,
            dst,
            size,
            kind,
            ecn: Ecn::NotCapable,
            ecn_echo: false,
            sack: SackBlocks::EMPTY,
            sent_at: SimTime::ZERO,
        }
    }

    /// Returns the packet with the given ECN state (builder-style).
    pub fn with_ecn(mut self, ecn: Ecn) -> Self {
        self.ecn = ecn;
        self
    }

    /// Returns the packet with the ECE echo flag set (builder-style).
    pub fn with_ecn_echo(mut self, echo: bool) -> Self {
        self.ecn_echo = echo;
        self
    }

    /// Returns the packet carrying the given SACK ranges (builder-style).
    pub fn with_sack(mut self, sack: SackBlocks) -> Self {
        self.sack = sack;
        self
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            PacketKind::Data { seq, retx } => write!(
                f,
                "[{} data seq={}{} {} {}->{}]",
                self.flow,
                seq,
                if retx { " retx" } else { "" },
                self.size,
                self.src,
                self.dst
            ),
            PacketKind::Ack { cum_seq } => write!(
                f,
                "[{} ack cum={} {}->{}]",
                self.flow, cum_seq, self.src, self.dst
            ),
            PacketKind::Attack => write!(
                f,
                "[{} attack {} {}->{}]",
                self.flow, self.size, self.src, self.dst
            ),
            PacketKind::Background => write!(
                f,
                "[{} background {} {}->{}]",
                self.flow, self.size, self.src, self.dst
            ),
        }
    }
}

/// A generation-checked handle to a packet parked in a [`PacketArena`].
///
/// `Deliver` events carry one of these (8 bytes) instead of a full
/// [`Packet`] (~100 bytes), which keeps event-queue entries small and hot.
/// The generation counter makes ABA misuse loud: a handle that outlives
/// its packet (taken and the slot recycled) panics on access instead of
/// silently aliasing the new occupant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketRef {
    index: u32,
    gen: u32,
}

#[derive(Debug, Clone)]
struct ArenaSlot {
    packet: Packet,
    gen: u32,
}

/// Slab of in-flight packets awaiting delivery.
///
/// The engine parks a packet here when it schedules its `Deliver` event
/// and takes it back out when the event pops, so the slot count tracks the
/// number of packets in flight (a few hundred in typical topologies), not
/// total traffic. Slots are recycled through a free list; every recycle
/// bumps the slot's generation so stale [`PacketRef`]s are detectable.
#[derive(Debug, Clone, Default)]
pub struct PacketArena {
    slots: Vec<ArenaSlot>,
    free: Vec<u32>,
    live: usize,
}

impl PacketArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parks `packet` and returns its handle.
    pub fn insert(&mut self, packet: Packet) -> PacketRef {
        self.live += 1;
        match self.free.pop() {
            Some(index) => {
                let slot = &mut self.slots[index as usize];
                slot.packet = packet;
                PacketRef {
                    index,
                    gen: slot.gen,
                }
            }
            None => {
                let index = u32::try_from(self.slots.len()).expect("packet arena overflow");
                self.slots.push(ArenaSlot { packet, gen: 0 });
                PacketRef { index, gen: 0 }
            }
        }
    }

    /// Removes and returns the packet behind `handle`, recycling its slot.
    ///
    /// # Panics
    ///
    /// Panics if `handle` is stale — its packet was already taken and the
    /// slot may have been recycled (an ABA bug in the caller).
    pub fn take(&mut self, handle: PacketRef) -> Packet {
        let slot = &mut self.slots[handle.index as usize];
        assert_eq!(
            slot.gen, handle.gen,
            "stale PacketRef: arena slot {} was recycled (ABA)",
            handle.index,
        );
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(handle.index);
        self.live -= 1;
        slot.packet
    }

    /// Borrows the packet behind `handle` without freeing the slot.
    ///
    /// # Panics
    ///
    /// Panics if `handle` is stale, like [`take`](Self::take).
    pub fn get(&self, handle: PacketRef) -> &Packet {
        let slot = &self.slots[handle.index as usize];
        assert_eq!(
            slot.gen, handle.gen,
            "stale PacketRef: arena slot {} was recycled (ABA)",
            handle.index,
        );
        &slot.packet
    }

    /// Number of packets currently parked.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Capacity high-water mark: total slots ever allocated.
    pub fn slots_allocated(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Packet {
        Packet::new(
            FlowId::from_u32(3),
            NodeId::from_u32(1),
            NodeId::from_u32(2),
            Bytes::from_u64(1500),
            PacketKind::Data {
                seq: 7,
                retx: false,
            },
        )
    }

    #[test]
    fn kind_predicates() {
        assert!(PacketKind::Data {
            seq: 0,
            retx: false
        }
        .is_data());
        assert!(PacketKind::Ack { cum_seq: 0 }.is_ack());
        assert!(PacketKind::Attack.is_attack());
        assert!(!PacketKind::Attack.is_data());
        assert!(!PacketKind::Background.is_ack());
    }

    #[test]
    fn packet_is_copy_and_small() {
        let p = sample();
        let q = p; // Copy
        assert_eq!(p, q);
        // Keep the hot type lean; queues hold tens of thousands of these.
        assert!(std::mem::size_of::<Packet>() <= 104);
    }

    #[test]
    fn ecn_defaults_off_and_builders_set_it() {
        let p = sample();
        assert_eq!(p.ecn, Ecn::NotCapable);
        assert!(!p.ecn_echo);
        let q = p.with_ecn(Ecn::Capable).with_ecn_echo(true);
        assert!(q.ecn.is_markable());
        assert!(q.ecn_echo);
        assert!(Ecn::CongestionExperienced.is_marked());
        assert!(!Ecn::Capable.is_marked());
        assert!(!Ecn::NotCapable.is_markable());
    }

    #[test]
    fn sack_blocks_construction() {
        assert!(SackBlocks::EMPTY.is_empty());
        let b = SackBlocks::from_ranges(&[(3, 5), (9, 9), (10, 12), (20, 30)]);
        // Empty range skipped, third valid range dropped (capacity 2).
        assert_eq!(b.ranges(), &[(3, 5), (10, 12)]);
        assert!(!b.is_empty());
        let p = Packet::new(
            FlowId::from_u32(0),
            NodeId::from_u32(0),
            NodeId::from_u32(1),
            Bytes::from_u64(40),
            PacketKind::Ack { cum_seq: 3 },
        )
        .with_sack(b);
        assert_eq!(p.sack.ranges().len(), 2);
    }

    #[test]
    fn display_mentions_flow_and_kind() {
        let s = sample().to_string();
        assert!(s.contains("flow3"));
        assert!(s.contains("seq=7"));
    }

    #[test]
    fn arena_roundtrips_and_recycles() {
        let mut arena = PacketArena::new();
        let p = sample();
        let h1 = arena.insert(p);
        assert_eq!(arena.live(), 1);
        assert_eq!(*arena.get(h1), p);
        assert_eq!(arena.take(h1), p);
        assert_eq!(arena.live(), 0);
        // The freed slot is reused, with a new generation.
        let h2 = arena.insert(p);
        assert_eq!(arena.slots_allocated(), 1);
        assert_ne!(h1, h2);
        assert_eq!(arena.take(h2), p);
    }

    #[test]
    #[should_panic(expected = "stale PacketRef")]
    fn stale_handle_take_panics_after_recycle() {
        // The ABA scenario: take a packet, let the slot be recycled for a
        // different packet, then use the old handle. Must panic, not alias.
        let mut arena = PacketArena::new();
        let h1 = arena.insert(sample());
        let _ = arena.take(h1);
        let _h2 = arena.insert(sample()); // recycles slot 0
        let _ = arena.take(h1); // stale: panics
    }

    #[test]
    #[should_panic(expected = "stale PacketRef")]
    fn stale_handle_get_panics() {
        let mut arena = PacketArena::new();
        let h = arena.insert(sample());
        let _ = arena.take(h);
        let _ = arena.get(h);
    }
}
