//! Deterministic self-profiling: per-event-type cost counters for the
//! engine's hot loop.
//!
//! [`crate::engine::Simulator::enable_profiler`] arms a per-event-type
//! breakdown — how many events of each kind the loop dispatched, the
//! cumulative wall-clock spent inside their handlers, and (when an
//! allocation probe is registered, see [`set_alloc_probe`]) how many
//! heap allocations and bytes those handlers requested. The breakdown is
//! what `pdos bench --profile` reports, and what pinned the million-flow
//! hot-path offenders this subsystem was built to kill.
//!
//! Two invariants, both tested:
//!
//! * **Hash-neutral**: profiling only *reads* the run. Enabling it must
//!   not change a single event, packet, or digest — the same contract
//!   the metrics and tap layers honour.
//! * **Zero-overhead when disabled**: the loop pays one `Option`
//!   discriminant test per event and nothing else, exactly like the
//!   disabled metrics path. Wall-clock reads (`Instant::now`) happen
//!   only while a profiler is armed.
//!
//! The wall and allocation readings are *measurements* of the host, not
//! of the simulation: they vary run to run and never feed back into the
//! event loop (the simulation stays deterministic; the profile is a
//! report about it).

use crate::event::Event;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Event kinds the profiler breaks costs down by, in display order.
pub const EVENT_KINDS: [&str; 4] = ["deliver", "link-tx-done", "timer", "agent-start"];

/// Index into [`EVENT_KINDS`] for an event.
pub(crate) fn kind_index(event: &Event) -> usize {
    match event {
        Event::Deliver { .. } => 0,
        Event::LinkTxDone { .. } => 1,
        Event::Timer { .. } => 2,
        Event::AgentStart { .. } => 3,
    }
}

/// Allocation counters `(allocations, bytes)` as sampled by the probe.
type AllocProbe = fn() -> (u64, u64);

/// The registered probe, stored as a `usize` so the static needs no
/// locking (0 = none; fn pointers are never null).
static ALLOC_PROBE: AtomicUsize = AtomicUsize::new(0);

/// Registers the process-wide allocation probe the profiler samples
/// around each event handler — a cheap `fn` returning cumulative
/// `(allocations, bytes)` for the whole process, typically backed by a
/// counting `#[global_allocator]` (the `pdos` binary registers one).
/// Without a probe the profiler reports zero allocations.
///
/// Later registrations replace earlier ones.
pub fn set_alloc_probe(probe: fn() -> (u64, u64)) {
    ALLOC_PROBE.store(probe as usize, Ordering::Release);
}

fn sample_allocs() -> Option<(u64, u64)> {
    let raw = ALLOC_PROBE.load(Ordering::Acquire);
    if raw == 0 {
        return None;
    }
    // SAFETY: the only writer is `set_alloc_probe`, which stores a valid
    // `AllocProbe` fn pointer; fn pointers are plain addresses.
    let probe: AllocProbe = unsafe { std::mem::transmute::<usize, AllocProbe>(raw) };
    Some(probe())
}

/// Cost counters for one event kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindProfile {
    /// Events of this kind dispatched.
    pub count: u64,
    /// Cumulative wall-clock inside their handlers, nanoseconds.
    pub wall_nanos: u64,
    /// Heap allocations requested by their handlers (0 without a probe).
    pub allocations: u64,
    /// Heap bytes requested by their handlers (0 without a probe).
    pub alloc_bytes: u64,
}

/// A finished per-event-type breakdown, ordered as [`EVENT_KINDS`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProfileSnapshot {
    /// One row per event kind.
    pub kinds: [KindProfile; 4],
}

impl ProfileSnapshot {
    /// Total events across all kinds.
    pub fn total_events(&self) -> u64 {
        self.kinds.iter().map(|k| k.count).sum()
    }

    /// Total handler wall-clock, nanoseconds.
    pub fn total_wall_nanos(&self) -> u64 {
        self.kinds.iter().map(|k| k.wall_nanos).sum()
    }

    /// Element-wise accumulation (used to merge per-shard profiles).
    pub fn merge(&mut self, other: &ProfileSnapshot) {
        for (into, from) in self.kinds.iter_mut().zip(other.kinds.iter()) {
            into.count += from.count;
            into.wall_nanos += from.wall_nanos;
            into.allocations += from.allocations;
            into.alloc_bytes += from.alloc_bytes;
        }
    }

    /// A human-readable table, one row per event kind.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "  {:<16} {:>12} {:>12} {:>10} {:>14} {:>14}",
            "event kind", "count", "wall ms", "ns/event", "allocations", "alloc MiB"
        );
        for (name, k) in EVENT_KINDS.iter().zip(self.kinds.iter()) {
            let per = if k.count > 0 {
                k.wall_nanos as f64 / k.count as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  {:<16} {:>12} {:>12.3} {:>10.0} {:>14} {:>14.1}",
                name,
                k.count,
                k.wall_nanos as f64 / 1e6,
                per,
                k.allocations,
                k.alloc_bytes as f64 / (1024.0 * 1024.0),
            );
        }
        out
    }
}

/// The live profiler: a [`ProfileSnapshot`] under accumulation.
#[derive(Debug, Clone, Default)]
pub(crate) struct Profiler {
    snapshot: ProfileSnapshot,
}

/// Readings taken just before an event handler runs, consumed by
/// [`Profiler::record`] right after it returns.
pub(crate) struct EventStart {
    kind: usize,
    t0: Instant,
    allocs0: Option<(u64, u64)>,
}

impl Profiler {
    pub(crate) fn new() -> Profiler {
        Profiler::default()
    }

    /// Samples the clocks for one event about to be dispatched.
    pub(crate) fn begin(event: &Event) -> EventStart {
        EventStart {
            kind: kind_index(event),
            t0: Instant::now(),
            allocs0: sample_allocs(),
        }
    }

    /// Folds one dispatched event into the breakdown.
    pub(crate) fn record(&mut self, start: EventStart) {
        let k = &mut self.snapshot.kinds[start.kind];
        k.count += 1;
        k.wall_nanos += start.t0.elapsed().as_nanos() as u64;
        if let (Some((a0, b0)), Some((a1, b1))) = (start.allocs0, sample_allocs()) {
            k.allocations += a1.saturating_sub(a0);
            k.alloc_bytes += b1.saturating_sub(b0);
        }
    }

    pub(crate) fn snapshot(&self) -> ProfileSnapshot {
        self.snapshot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_elementwise() {
        let mut a = ProfileSnapshot::default();
        a.kinds[0].count = 3;
        a.kinds[0].wall_nanos = 30;
        let mut b = ProfileSnapshot::default();
        b.kinds[0].count = 4;
        b.kinds[0].wall_nanos = 10;
        b.kinds[2].allocations = 7;
        a.merge(&b);
        assert_eq!(a.kinds[0].count, 7);
        assert_eq!(a.kinds[0].wall_nanos, 40);
        assert_eq!(a.kinds[2].allocations, 7);
        assert_eq!(a.total_events(), 7);
    }

    #[test]
    fn summary_lists_every_kind() {
        let snap = ProfileSnapshot::default();
        let text = snap.summary();
        for kind in EVENT_KINDS {
            assert!(text.contains(kind), "{text}");
        }
    }
}
