//! Aggregate-based congestion control (ACC), after Mahajan, Bellovin,
//! Floyd et al., *"Controlling high bandwidth aggregates in the network"*
//! — reference [19] of the DSN 2005 paper.
//!
//! The discipline wraps RED with a local ACC loop:
//!
//! 1. arrivals are accounted per flow in short sub-bins inside fixed
//!    epochs;
//! 2. when an epoch ends with sustained congestion (drop count above a
//!    threshold), flows whose **peak sub-bin arrival rate exceeded the
//!    line rate** become suspects — an ACK-clocked TCP flow whose
//!    acknowledgements return through this very bottleneck cannot offer
//!    more than (about) the line rate over a sub-bin, while an attack
//!    pulse exceeds it by construction (that is how it floods the
//!    queue). A suspect persisting across `suspicion_epochs` congested
//!    epochs is penalized;
//! 3. a penalized flow passes through a token-bucket rate limiter (drops
//!    beyond its allowance) until it stays quiet for `release_epochs`
//!    consecutive epochs.
//!
//! A pulsing attack concentrates line-rate-busting bursts inside each
//! congested epoch, so ACC catches exactly the traffic that slips under
//! long-horizon volume detectors.

use super::red::{RedConfig, RedQueue};
use super::{EnqueueOutcome, QueueDiscipline};
use crate::packet::{FlowId, Packet};
use crate::time::{SimDuration, SimTime};
use crate::units::{BitsPerSec, Bytes};
use std::collections::HashMap;

/// ACC parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct AccConfig {
    /// The inner RED discipline.
    pub red: RedConfig,
    /// Accounting epoch length.
    pub epoch: SimDuration,
    /// Drops within one epoch that count as "sustained congestion".
    pub congestion_drops: u64,
    /// Sub-bin width for per-flow burst-rate accounting.
    pub subbin: SimDuration,
    /// A flow is suspect when its peak sub-bin arrival volume exceeds
    /// `burst_factor x capacity x subbin` during a congested epoch.
    pub burst_factor: f64,
    /// The rate a penalized aggregate is limited to, as a fraction of the
    /// link capacity.
    pub limit_fraction: f64,
    /// Congestion-free epochs before a penalized flow is released.
    pub release_epochs: u32,
    /// Consecutive congested epochs a dominant, non-backing-off flow must
    /// persist before it is penalized (the responsiveness test).
    pub suspicion_epochs: u32,
}

impl AccConfig {
    /// A practical default: 1 s epochs, 50 drops to trigger, 50 ms burst
    /// sub-bins with a 1.2x line-rate threshold, limit offenders to 5% of
    /// capacity, release after 5 quiet epochs, penalize after 2
    /// suspicious epochs.
    pub fn default_for(red: RedConfig) -> Self {
        AccConfig {
            red,
            epoch: SimDuration::from_secs(1),
            congestion_drops: 50,
            subbin: SimDuration::from_millis(50),
            burst_factor: 1.2,
            limit_fraction: 0.05,
            release_epochs: 5,
            suspicion_epochs: 2,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first inconsistent field.
    pub fn validate(&self) -> Result<(), String> {
        self.red.validate()?;
        if self.epoch.is_zero() {
            return Err("epoch must be positive".into());
        }
        if self.subbin.is_zero() || self.subbin > self.epoch {
            return Err("subbin must be positive and no longer than the epoch".into());
        }
        if !(self.burst_factor >= 1.0 && self.burst_factor.is_finite()) {
            return Err(format!(
                "burst_factor must be >= 1, got {}",
                self.burst_factor
            ));
        }
        if !(self.limit_fraction > 0.0 && self.limit_fraction <= 1.0) {
            return Err(format!(
                "limit_fraction must be in (0,1], got {}",
                self.limit_fraction
            ));
        }
        if self.suspicion_epochs == 0 {
            return Err("suspicion_epochs must be at least 1".into());
        }
        Ok(())
    }
}

#[derive(Debug, Clone)]
struct PenaltyBox {
    /// Token bucket level, in bytes.
    tokens: f64,
    /// Maximum bucket depth, in bytes.
    burst: f64,
    last_refill: SimTime,
    quiet_epochs: u32,
}

/// RED wrapped with the ACC penalty-box loop.
#[derive(Clone)]
pub struct AccQueue {
    cfg: AccConfig,
    inner: RedQueue,
    bandwidth: BitsPerSec,
    epoch_start: SimTime,
    epoch_bytes: HashMap<FlowId, u64>,
    /// Highest sub-bin byte count seen per flow this epoch.
    epoch_peak: HashMap<FlowId, u64>,
    /// Current sub-bin accumulation.
    subbin_bytes: HashMap<FlowId, u64>,
    subbin_start: SimTime,
    suspects: HashMap<FlowId, u32>,
    drops_at_epoch_start: u64,
    penalized: HashMap<FlowId, PenaltyBox>,
    limiter_drops: u64,
    penalties_applied: u64,
}

impl std::fmt::Debug for AccQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AccQueue")
            .field("penalized", &self.penalized.len())
            .field("limiter_drops", &self.limiter_drops)
            .field("backlog", &self.inner.len_packets())
            .finish()
    }
}

impl AccQueue {
    /// Creates an ACC queue draining at `bandwidth`; `seed` feeds the
    /// inner RED.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`AccConfig::validate`] or `bandwidth` is
    /// zero.
    pub fn new(cfg: AccConfig, bandwidth: BitsPerSec, seed: u64) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid ACC configuration: {e}");
        }
        assert!(!bandwidth.is_zero(), "ACC needs a positive drain rate");
        let inner = RedQueue::new(cfg.red.clone(), bandwidth, seed);
        AccQueue {
            inner,
            bandwidth,
            epoch_start: SimTime::ZERO,
            epoch_bytes: HashMap::new(),
            epoch_peak: HashMap::new(),
            subbin_bytes: HashMap::new(),
            subbin_start: SimTime::ZERO,
            suspects: HashMap::new(),
            drops_at_epoch_start: 0,
            penalized: HashMap::new(),
            limiter_drops: 0,
            penalties_applied: 0,
            cfg,
        }
    }

    /// Flows currently in the penalty box.
    pub fn penalized_flows(&self) -> Vec<FlowId> {
        let mut v: Vec<FlowId> = self.penalized.keys().copied().collect();
        v.sort();
        v
    }

    /// Packets dropped by the rate limiter (in addition to RED's drops).
    pub fn limiter_drops(&self) -> u64 {
        self.limiter_drops
    }

    /// Times a flow has been placed in the penalty box.
    pub fn penalties_applied(&self) -> u64 {
        self.penalties_applied
    }

    fn close_subbin(&mut self) {
        for (&flow, &bytes) in &self.subbin_bytes {
            let peak = self.epoch_peak.entry(flow).or_insert(0);
            if bytes > *peak {
                *peak = bytes;
            }
        }
        self.subbin_bytes.clear();
    }

    fn close_epoch(&mut self, now: SimTime) {
        self.close_subbin();
        let drops_this_epoch = self.inner.drops() + self.limiter_drops - self.drops_at_epoch_start;
        let congested = drops_this_epoch >= self.cfg.congestion_drops;
        let epoch_capacity_bytes = self.bandwidth.as_bps() * self.cfg.epoch.as_secs_f64() / 8.0;
        let burst_threshold =
            self.cfg.burst_factor * self.bandwidth.as_bps() * self.cfg.subbin.as_secs_f64() / 8.0;

        if congested {
            // Suspects: flows that burst above the line rate into a
            // congested queue. ACK-clocked traffic through this bottleneck
            // cannot do that; pulse trains do it by construction.
            let bursting: Vec<FlowId> = self
                .epoch_peak
                .iter()
                .filter(|(flow, &peak)| {
                    peak as f64 > burst_threshold && !self.penalized.contains_key(flow)
                })
                .map(|(&f, _)| f)
                .collect();
            let mut next_suspects: HashMap<FlowId, u32> = HashMap::new();
            for flow in bursting {
                let count = self.suspects.get(&flow).copied().unwrap_or(0) + 1;
                if count >= self.cfg.suspicion_epochs {
                    let burst = epoch_capacity_bytes * self.cfg.limit_fraction;
                    self.penalized.insert(
                        flow,
                        PenaltyBox {
                            tokens: burst,
                            burst,
                            last_refill: now,
                            quiet_epochs: 0,
                        },
                    );
                    self.penalties_applied += 1;
                } else {
                    next_suspects.insert(flow, count);
                }
            }
            self.suspects = next_suspects;
            for pb in self.penalized.values_mut() {
                pb.quiet_epochs = 0;
            }
        } else {
            self.suspects.clear();
            // A quiet epoch; age the penalty boxes and release veterans.
            let release = self.cfg.release_epochs;
            self.penalized.retain(|_, pb| {
                pb.quiet_epochs += 1;
                pb.quiet_epochs < release
            });
        }

        self.epoch_bytes.clear();
        self.epoch_peak.clear();
        self.drops_at_epoch_start = self.inner.drops() + self.limiter_drops;
        self.epoch_start = now;
        self.subbin_start = now;
    }

    fn maybe_roll_epoch(&mut self, now: SimTime) {
        while now.saturating_since(self.epoch_start) >= self.cfg.epoch {
            let boundary = self.epoch_start + self.cfg.epoch;
            self.close_epoch(boundary);
        }
        while now.saturating_since(self.subbin_start) >= self.cfg.subbin {
            self.close_subbin();
            self.subbin_start += self.cfg.subbin;
        }
    }

    /// Token-bucket admission for a penalized flow. Returns false when the
    /// packet exceeds the allowance.
    fn admit_penalized(&mut self, flow: FlowId, size: Bytes, now: SimTime) -> bool {
        let rate = self.bandwidth.as_bps() * self.cfg.limit_fraction / 8.0; // bytes/s
        let Some(pb) = self.penalized.get_mut(&flow) else {
            return true;
        };
        let dt = now.saturating_since(pb.last_refill).as_secs_f64();
        pb.tokens = (pb.tokens + rate * dt).min(pb.burst);
        pb.last_refill = now;
        if pb.tokens >= size.as_f64() {
            pb.tokens -= size.as_f64();
            true
        } else {
            false
        }
    }
}

impl QueueDiscipline for AccQueue {
    fn enqueue(&mut self, packet: Packet, now: SimTime) -> EnqueueOutcome {
        self.maybe_roll_epoch(now);
        *self.epoch_bytes.entry(packet.flow).or_insert(0) += packet.size.as_u64();
        *self.subbin_bytes.entry(packet.flow).or_insert(0) += packet.size.as_u64();
        if !self.admit_penalized(packet.flow, packet.size, now) {
            self.limiter_drops += 1;
            return EnqueueOutcome::Dropped;
        }
        self.inner.enqueue(packet, now)
    }

    fn dequeue(&mut self, now: SimTime) -> Option<Packet> {
        self.inner.dequeue(now)
    }

    fn len_packets(&self) -> usize {
        self.inner.len_packets()
    }

    fn len_bytes(&self) -> Bytes {
        self.inner.len_bytes()
    }

    fn capacity_packets(&self) -> usize {
        self.inner.capacity_packets()
    }

    fn drops(&self) -> u64 {
        self.inner.drops() + self.limiter_drops
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn name(&self) -> &'static str {
        "acc-red"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;
    use crate::packet::PacketKind;

    fn pkt(flow: u32, size: u64) -> Packet {
        Packet::new(
            FlowId::from_u32(flow),
            NodeId::from_u32(0),
            NodeId::from_u32(1),
            Bytes::from_u64(size),
            PacketKind::Attack,
        )
    }

    fn acc(capacity: usize) -> AccQueue {
        AccQueue::new(
            AccConfig::default_for(RedConfig::paper_testbed(capacity)),
            BitsPerSec::from_mbps(15.0),
            7,
        )
    }

    /// Drives a pulse of `n` packets of flow `flow` at time `t`, draining
    /// `drain` packets afterwards.
    fn pulse(q: &mut AccQueue, flow: u32, n: usize, t: SimTime, drain: usize) {
        for i in 0..n {
            let _ = q.enqueue(pkt(flow, 1000), t + SimDuration::from_micros(i as u64));
        }
        for i in 0..drain {
            let _ = q.dequeue(t + SimDuration::from_millis(1 + i as u64));
        }
    }

    #[test]
    fn persistent_attack_aggregate_lands_in_penalty_box() {
        let mut q = acc(60);
        // Two consecutive congested epochs dominated by flow 9: suspect in
        // the first, penalized after the second (it did not back off).
        pulse(&mut q, 9, 500, SimTime::from_millis(100), 500);
        let _ = q.enqueue(pkt(1, 100), SimTime::from_millis(1100));
        assert!(
            q.penalized_flows().is_empty(),
            "one epoch only makes a suspect"
        );
        pulse(&mut q, 9, 500, SimTime::from_millis(1200), 500);
        let _ = q.enqueue(pkt(1, 100), SimTime::from_millis(2100));
        assert_eq!(q.penalized_flows(), vec![FlowId::from_u32(9)]);
        assert_eq!(q.penalties_applied(), 1);
    }

    #[test]
    fn paced_heavy_flow_is_spared() {
        let mut q = acc(60);
        // Flow 7 carries a lot of volume but paced below the line rate
        // (one 1 kB packet per millisecond = 8 Mbps < 15 Mbps), while
        // flow 9's bursts cause the congestion across two epochs.
        for epoch in 0..2u64 {
            let base = SimTime::from_millis(epoch * 1000);
            for i in 0..900u64 {
                let _ = q.enqueue(pkt(7, 1000), base + SimDuration::from_millis(i));
                if i % 2 == 0 {
                    let _ = q.dequeue(base + SimDuration::from_millis(i));
                }
            }
            pulse(&mut q, 9, 500, base + SimDuration::from_millis(950), 500);
        }
        let _ = q.enqueue(pkt(1, 100), SimTime::from_millis(2100));
        assert!(
            !q.penalized_flows().contains(&FlowId::from_u32(7)),
            "a paced aggregate must not be penalized: {:?}",
            q.penalized_flows()
        );
        assert!(q.penalized_flows().contains(&FlowId::from_u32(9)));
    }

    #[test]
    fn penalized_flow_is_rate_limited() {
        let mut q = acc(60);
        pulse(&mut q, 9, 500, SimTime::from_millis(100), 500);
        let _ = q.enqueue(pkt(1, 100), SimTime::from_millis(1100));
        pulse(&mut q, 9, 500, SimTime::from_millis(1200), 500);
        let _ = q.enqueue(pkt(1, 100), SimTime::from_millis(2100));
        assert!(!q.penalized_flows().is_empty());
        // The next pulse from flow 9 is mostly clipped by the limiter:
        // the 5% bucket holds ~94 kB per second; a 500 kB pulse loses most
        // of its packets before RED even sees them.
        let before = q.limiter_drops();
        pulse(&mut q, 9, 500, SimTime::from_millis(2200), 500);
        assert!(
            q.limiter_drops() > before + 300,
            "limiter must clip the pulse: {} drops",
            q.limiter_drops() - before
        );
    }

    #[test]
    fn small_flows_stay_unpenalized_during_congestion() {
        let mut q = acc(60);
        // Congestion caused by flow 9 across two epochs; flow 1 sends a
        // little in both.
        for epoch in 0..2u64 {
            let base = SimTime::from_millis(50 + epoch * 1000);
            for i in 0..20 {
                let _ = q.enqueue(pkt(1, 1000), base + SimDuration::from_millis(i));
            }
            pulse(&mut q, 9, 500, base + SimDuration::from_millis(60), 520);
        }
        let _ = q.enqueue(pkt(1, 100), SimTime::from_millis(2100));
        assert_eq!(q.penalized_flows(), vec![FlowId::from_u32(9)]);
    }

    #[test]
    fn no_congestion_no_penalty() {
        let mut q = acc(600);
        // Heavy but uncongested: big buffer absorbs it (few drops).
        pulse(&mut q, 9, 300, SimTime::from_millis(100), 300);
        let _ = q.enqueue(pkt(1, 100), SimTime::from_millis(1100));
        assert!(q.penalized_flows().is_empty());
    }

    #[test]
    fn quiet_epochs_release_the_penalty() {
        let mut q = acc(60);
        pulse(&mut q, 9, 500, SimTime::from_millis(100), 500);
        let _ = q.enqueue(pkt(1, 100), SimTime::from_millis(1100));
        pulse(&mut q, 9, 500, SimTime::from_millis(1200), 500);
        let _ = q.enqueue(pkt(1, 100), SimTime::from_millis(2100));
        assert!(!q.penalized_flows().is_empty());
        // Several quiet epochs: only tiny traffic from flow 1.
        for e in 3..12u64 {
            let _ = q.enqueue(pkt(1, 100), SimTime::from_millis(e * 1000 + 100));
            let _ = q.dequeue(SimTime::from_millis(e * 1000 + 200));
        }
        assert!(
            q.penalized_flows().is_empty(),
            "release after quiet epochs, still penalized: {:?}",
            q.penalized_flows()
        );
    }

    #[test]
    fn config_validation() {
        let mut c = AccConfig::default_for(RedConfig::paper_testbed(60));
        c.burst_factor = 0.5;
        assert!(c.validate().is_err());
        let mut c = AccConfig::default_for(RedConfig::paper_testbed(60));
        c.subbin = SimDuration::from_secs(10); // longer than the epoch
        assert!(c.validate().is_err());
        let mut c = AccConfig::default_for(RedConfig::paper_testbed(60));
        c.limit_fraction = 2.0;
        assert!(c.validate().is_err());
        let mut c = AccConfig::default_for(RedConfig::paper_testbed(60));
        c.epoch = SimDuration::ZERO;
        assert!(c.validate().is_err());
        let mut c = AccConfig::default_for(RedConfig::paper_testbed(60));
        c.suspicion_epochs = 0;
        assert!(c.validate().is_err());
        assert!(AccConfig::default_for(RedConfig::paper_testbed(60))
            .validate()
            .is_ok());
    }

    #[test]
    fn name_and_counters() {
        let q = acc(60);
        assert_eq!(q.name(), "acc-red");
        assert_eq!(q.drops(), 0);
        assert_eq!(q.limiter_drops(), 0);
    }

    proptest::proptest! {
        /// Occupancy never exceeds the inner RED's hard capacity and drop
        /// accounting stays additive (inner drops + limiter drops),
        /// whatever mix of flows, sizes and times arrives.
        #[test]
        fn prop_occupancy_never_exceeds_capacity(
            ops in proptest::collection::vec(
                (proptest::bool::ANY, 0u32..5, 100u64..1500), 1..300
            )
        ) {
            let capacity = 16;
            let mut q = AccQueue::new(
                AccConfig::default_for(RedConfig::paper_testbed(capacity)),
                BitsPerSec::from_mbps(15.0),
                7,
            );
            let mut t = SimTime::ZERO;
            for (is_enq, flow, size) in ops {
                t += SimDuration::from_micros(137);
                if is_enq {
                    let _ = q.enqueue(pkt(flow, size), t);
                } else {
                    let _ = q.dequeue(t);
                }
                proptest::prop_assert!(
                    q.len_packets() <= capacity,
                    "backlog {} exceeds capacity {capacity}",
                    q.len_packets()
                );
                proptest::prop_assert_eq!(q.capacity_packets(), capacity);
                proptest::prop_assert_eq!(
                    q.drops(),
                    q.inner.drops() + q.limiter_drops
                );
            }
        }
    }
}
