//! Tail-drop FIFO queue.

use super::{EnqueueOutcome, QueueDiscipline};
use crate::packet::Packet;
use crate::time::SimTime;
use crate::units::Bytes;
use std::collections::VecDeque;

/// A classic tail-drop FIFO: accept until the packet capacity is reached,
/// then drop arrivals.
///
/// # Examples
///
/// ```
/// use pdos_sim::queue::{DropTailQueue, QueueDiscipline, EnqueueOutcome};
/// use pdos_sim::packet::{Packet, FlowId, PacketKind};
/// use pdos_sim::node::NodeId;
/// use pdos_sim::units::Bytes;
/// use pdos_sim::time::SimTime;
///
/// let mut q = DropTailQueue::new(1);
/// let pkt = Packet::new(FlowId::from_u32(0), NodeId::from_u32(0),
///                       NodeId::from_u32(1), Bytes::from_u64(100),
///                       PacketKind::Background);
/// assert_eq!(q.enqueue(pkt, SimTime::ZERO), EnqueueOutcome::Enqueued);
/// assert_eq!(q.enqueue(pkt, SimTime::ZERO), EnqueueOutcome::Dropped);
/// ```
#[derive(Debug, Clone)]
pub struct DropTailQueue {
    buf: VecDeque<Packet>,
    capacity: usize,
    bytes: Bytes,
    drops: u64,
}

impl DropTailQueue {
    /// Creates a queue holding at most `capacity` packets.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a zero-capacity buffer cannot even
    /// hold the packet in transmission.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be at least 1 packet");
        DropTailQueue {
            buf: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            bytes: Bytes::ZERO,
            drops: 0,
        }
    }
}

impl QueueDiscipline for DropTailQueue {
    fn enqueue(&mut self, packet: Packet, _now: SimTime) -> EnqueueOutcome {
        if self.buf.len() >= self.capacity {
            self.drops += 1;
            return EnqueueOutcome::Dropped;
        }
        self.bytes += packet.size;
        self.buf.push_back(packet);
        EnqueueOutcome::Enqueued
    }

    fn dequeue(&mut self, _now: SimTime) -> Option<Packet> {
        let p = self.buf.pop_front()?;
        self.bytes = self.bytes - p.size;
        Some(p)
    }

    fn len_packets(&self) -> usize {
        self.buf.len()
    }

    fn len_bytes(&self) -> Bytes {
        self.bytes
    }

    fn capacity_packets(&self) -> usize {
        self.capacity
    }

    fn drops(&self) -> u64 {
        self.drops
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn name(&self) -> &'static str {
        "droptail"
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::pkt;
    use super::*;

    #[test]
    fn fifo_order_preserved() {
        let mut q = DropTailQueue::new(8);
        for size in [100, 200, 300] {
            assert_eq!(
                q.enqueue(pkt(size), SimTime::ZERO),
                EnqueueOutcome::Enqueued
            );
        }
        assert_eq!(q.len_packets(), 3);
        assert_eq!(q.len_bytes().as_u64(), 600);
        let sizes: Vec<u64> = std::iter::from_fn(|| q.dequeue(SimTime::ZERO))
            .map(|p| p.size.as_u64())
            .collect();
        assert_eq!(sizes, vec![100, 200, 300]);
        assert_eq!(q.len_bytes(), Bytes::ZERO);
    }

    #[test]
    fn drops_when_full_and_counts() {
        let mut q = DropTailQueue::new(2);
        assert!(!q.enqueue(pkt(1), SimTime::ZERO).is_drop());
        assert!(!q.enqueue(pkt(1), SimTime::ZERO).is_drop());
        assert!(q.enqueue(pkt(1), SimTime::ZERO).is_drop());
        assert!(q.enqueue(pkt(1), SimTime::ZERO).is_drop());
        assert_eq!(q.drops(), 2);
        assert_eq!(q.len_packets(), 2);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_capacity_rejected() {
        DropTailQueue::new(0);
    }

    proptest::proptest! {
        /// Byte accounting matches the sum of buffered packet sizes under an
        /// arbitrary interleaving of enqueues and dequeues.
        #[test]
        fn prop_byte_accounting(ops in proptest::collection::vec((proptest::bool::ANY, 1u64..2000), 1..300)) {
            let mut q = DropTailQueue::new(64);
            let mut model: std::collections::VecDeque<u64> = Default::default();
            for (is_enq, size) in ops {
                if is_enq {
                    if q.enqueue(pkt(size), SimTime::ZERO) == EnqueueOutcome::Enqueued {
                        model.push_back(size);
                    }
                } else {
                    let got = q.dequeue(SimTime::ZERO).map(|p| p.size.as_u64());
                    proptest::prop_assert_eq!(got, model.pop_front());
                }
                proptest::prop_assert_eq!(q.len_packets(), model.len());
                proptest::prop_assert_eq!(q.len_bytes().as_u64(), model.iter().sum::<u64>());
                proptest::prop_assert!(q.len_packets() <= q.capacity_packets());
            }
        }

        /// A tail-drop queue drops an arrival **iff** it is full at that
        /// instant, for every capacity and interleaving, and the drop
        /// counter tracks exactly the dropped arrivals.
        #[test]
        fn prop_drops_iff_full(
            cap in 1usize..32,
            ops in proptest::collection::vec((proptest::bool::ANY, 1u64..1500), 1..300)
        ) {
            let mut q = DropTailQueue::new(cap);
            let mut expected_drops = 0u64;
            for (is_enq, size) in ops {
                if is_enq {
                    let was_full = q.len_packets() == cap;
                    let outcome = q.enqueue(pkt(size), SimTime::ZERO);
                    proptest::prop_assert_eq!(
                        outcome.is_drop(),
                        was_full,
                        "cap {}: outcome {:?} with occupancy {}",
                        cap, outcome, q.len_packets()
                    );
                    if was_full {
                        expected_drops += 1;
                    }
                } else {
                    let _ = q.dequeue(SimTime::ZERO);
                }
                proptest::prop_assert!(q.len_packets() <= cap);
                proptest::prop_assert_eq!(q.drops(), expected_drops);
            }
        }
    }
}
