//! Queue disciplines for link ingress buffers.
//!
//! The paper's experiments run the bottleneck under RED (ns-2 defaults plus
//! the §4.2 parameters) and its future-work section compares against
//! drop-tail; both disciplines live here behind one trait.

mod acc;
mod droptail;
mod red;

pub use acc::{AccConfig, AccQueue};
pub use droptail::DropTailQueue;
pub use red::{RedConfig, RedQueue};

use crate::packet::Packet;
use crate::time::SimTime;
use crate::units::{BitsPerSec, Bytes};

/// Result of offering a packet to a queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueOutcome {
    /// The packet was accepted and buffered.
    Enqueued,
    /// The packet was accepted but carries a fresh ECN
    /// congestion-experienced mark (an ECN-enabled RED chose to mark where
    /// it would otherwise have early-dropped).
    EnqueuedMarked,
    /// The packet was dropped by the discipline (tail drop or early drop).
    Dropped,
}

impl EnqueueOutcome {
    /// Whether the packet was dropped.
    pub const fn is_drop(self) -> bool {
        matches!(self, EnqueueOutcome::Dropped)
    }

    /// Whether the packet was accepted (marked or not).
    pub const fn is_accepted(self) -> bool {
        !self.is_drop()
    }
}

/// A FIFO buffering discipline with a drop policy.
///
/// Implementations must be deterministic: any randomness (RED's early-drop
/// coin) comes from an internal, explicitly seeded generator.
pub trait QueueDiscipline: Send {
    /// Offers `packet` to the queue at time `now`.
    fn enqueue(&mut self, packet: Packet, now: SimTime) -> EnqueueOutcome;

    /// Removes the head-of-line packet. `now` lets disciplines that track
    /// idle time (RED) observe when the buffer drains.
    fn dequeue(&mut self, now: SimTime) -> Option<Packet>;

    /// Current backlog in packets.
    fn len_packets(&self) -> usize;

    /// Current backlog in bytes.
    fn len_bytes(&self) -> Bytes;

    /// Configured capacity in packets.
    fn capacity_packets(&self) -> usize;

    /// Total packets dropped by the discipline so far.
    fn drops(&self) -> u64;

    /// Human-readable discipline name, for traces.
    fn name(&self) -> &'static str;

    /// Upcast for discipline-specific inspection (e.g. reading RED's
    /// average queue or ACC's penalty box out of a built link).
    fn as_any(&self) -> &dyn std::any::Any;
}

/// Declarative queue configuration, used by topology builders so that a
/// scenario can be described as plain data.
#[derive(Debug, Clone, PartialEq)]
pub enum QueueSpec {
    /// Tail-drop FIFO with the given packet capacity.
    DropTail {
        /// Buffer capacity in packets.
        capacity: usize,
    },
    /// Random Early Detection.
    Red(RedConfig),
    /// RED wrapped with aggregate-based congestion control (penalty-box
    /// rate limiting of dominant aggregates during congestion).
    Acc(AccConfig),
}

impl QueueSpec {
    /// Instantiates the discipline. `bandwidth` is the drain rate of the
    /// owning link (RED uses it to decay its average during idle periods);
    /// `seed` feeds RED's early-drop generator.
    pub fn build(&self, bandwidth: BitsPerSec, seed: u64) -> Box<dyn QueueDiscipline> {
        match self {
            QueueSpec::DropTail { capacity } => Box::new(DropTailQueue::new(*capacity)),
            QueueSpec::Red(cfg) => Box::new(RedQueue::new(cfg.clone(), bandwidth, seed)),
            QueueSpec::Acc(cfg) => Box::new(AccQueue::new(cfg.clone(), bandwidth, seed)),
        }
    }

    /// Buffer capacity in packets.
    pub fn capacity_packets(&self) -> usize {
        match self {
            QueueSpec::DropTail { capacity } => *capacity,
            QueueSpec::Red(cfg) => cfg.capacity,
            QueueSpec::Acc(cfg) => cfg.red.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;
    use crate::packet::{FlowId, PacketKind};

    pub(crate) fn pkt(size: u64) -> Packet {
        Packet::new(
            FlowId::from_u32(0),
            NodeId::from_u32(0),
            NodeId::from_u32(1),
            Bytes::from_u64(size),
            PacketKind::Background,
        )
    }

    #[test]
    fn spec_builds_matching_discipline() {
        let bw = BitsPerSec::from_mbps(15.0);
        let dt = QueueSpec::DropTail { capacity: 10 }.build(bw, 1);
        assert_eq!(dt.name(), "droptail");
        assert_eq!(dt.capacity_packets(), 10);
        let red = QueueSpec::Red(RedConfig::ns2_default(50)).build(bw, 1);
        assert_eq!(red.name(), "red");
        assert_eq!(red.capacity_packets(), 50);
        assert_eq!(
            QueueSpec::Red(RedConfig::ns2_default(50)).capacity_packets(),
            50
        );
    }

    #[test]
    fn outcome_predicate() {
        assert!(EnqueueOutcome::Dropped.is_drop());
        assert!(!EnqueueOutcome::Enqueued.is_drop());
        assert!(!EnqueueOutcome::EnqueuedMarked.is_drop());
        assert!(EnqueueOutcome::EnqueuedMarked.is_accepted());
        assert!(!EnqueueOutcome::Dropped.is_accepted());
    }
}
