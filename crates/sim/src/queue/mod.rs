//! Queue disciplines for link ingress buffers.
//!
//! The paper's experiments run the bottleneck under RED (ns-2 defaults plus
//! the §4.2 parameters) and its future-work section compares against
//! drop-tail; both disciplines live here behind one trait.

mod acc;
mod droptail;
mod red;

pub use acc::{AccConfig, AccQueue};
pub use droptail::DropTailQueue;
pub use red::{RedConfig, RedQueue};

use crate::packet::Packet;
use crate::time::SimTime;
use crate::units::{BitsPerSec, Bytes};

/// Result of offering a packet to a queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueOutcome {
    /// The packet was accepted and buffered.
    Enqueued,
    /// The packet was accepted but carries a fresh ECN
    /// congestion-experienced mark (an ECN-enabled RED chose to mark where
    /// it would otherwise have early-dropped).
    EnqueuedMarked,
    /// The packet was dropped by the discipline (tail drop or early drop).
    Dropped,
}

impl EnqueueOutcome {
    /// Whether the packet was dropped.
    pub const fn is_drop(self) -> bool {
        matches!(self, EnqueueOutcome::Dropped)
    }

    /// Whether the packet was accepted (marked or not).
    pub const fn is_accepted(self) -> bool {
        !self.is_drop()
    }
}

/// A FIFO buffering discipline with a drop policy.
///
/// Implementations must be deterministic: any randomness (RED's early-drop
/// coin) comes from an internal, explicitly seeded generator.
pub trait QueueDiscipline: Send {
    /// Offers `packet` to the queue at time `now`.
    fn enqueue(&mut self, packet: Packet, now: SimTime) -> EnqueueOutcome;

    /// Removes the head-of-line packet. `now` lets disciplines that track
    /// idle time (RED) observe when the buffer drains.
    fn dequeue(&mut self, now: SimTime) -> Option<Packet>;

    /// Current backlog in packets.
    fn len_packets(&self) -> usize;

    /// Current backlog in bytes.
    fn len_bytes(&self) -> Bytes;

    /// Configured capacity in packets.
    fn capacity_packets(&self) -> usize;

    /// Total packets dropped by the discipline so far.
    fn drops(&self) -> u64;

    /// Human-readable discipline name, for traces.
    fn name(&self) -> &'static str;

    /// Upcast for discipline-specific inspection (e.g. reading RED's
    /// average queue or ACC's penalty box out of a built link).
    fn as_any(&self) -> &dyn std::any::Any;
}

/// Declarative queue configuration, used by topology builders so that a
/// scenario can be described as plain data.
#[derive(Debug, Clone, PartialEq)]
pub enum QueueSpec {
    /// Tail-drop FIFO with the given packet capacity.
    DropTail {
        /// Buffer capacity in packets.
        capacity: usize,
    },
    /// Random Early Detection.
    Red(RedConfig),
    /// RED wrapped with aggregate-based congestion control (penalty-box
    /// rate limiting of dominant aggregates during congestion).
    Acc(AccConfig),
}

impl QueueSpec {
    /// Instantiates the discipline. `bandwidth` is the drain rate of the
    /// owning link (RED uses it to decay its average during idle periods);
    /// `seed` feeds RED's early-drop generator.
    pub fn build(&self, bandwidth: BitsPerSec, seed: u64) -> AnyQueue {
        match self {
            QueueSpec::DropTail { capacity } => AnyQueue::DropTail(DropTailQueue::new(*capacity)),
            QueueSpec::Red(cfg) => AnyQueue::Red(RedQueue::new(cfg.clone(), bandwidth, seed)),
            QueueSpec::Acc(cfg) => AnyQueue::Acc(AccQueue::new(cfg.clone(), bandwidth, seed)),
        }
    }

    /// Buffer capacity in packets.
    pub fn capacity_packets(&self) -> usize {
        match self {
            QueueSpec::DropTail { capacity } => *capacity,
            QueueSpec::Red(cfg) => cfg.capacity,
            QueueSpec::Acc(cfg) => cfg.red.capacity,
        }
    }
}

/// A queue discipline with enum dispatch on the hot path.
///
/// Links used to hold `Box<dyn QueueDiscipline>`; every per-packet
/// `enqueue`/`dequeue` was a virtual call through a pointer. The stock
/// disciplines are a closed set, so this enum devirtualizes them into a
/// direct match (and keeps the discipline inline in the `Link`, not behind
/// a second allocation). Out-of-tree disciplines still fit via
/// [`AnyQueue::Custom`].
// Inline (unboxed) variants are the point: there is one queue per link,
// so the size spread costs a few hundred bytes per topology, not per
// packet, and buys pointer-free dispatch.
#[allow(clippy::large_enum_variant)]
pub enum AnyQueue {
    /// Tail-drop FIFO.
    DropTail(DropTailQueue),
    /// Random Early Detection.
    Red(RedQueue),
    /// RED + aggregate-based congestion control.
    Acc(AccQueue),
    /// Any other discipline, boxed.
    Custom(Box<dyn QueueDiscipline>),
}

impl AnyQueue {
    /// Whether an `enqueue` immediately followed by `dequeue` at the same
    /// instant would be a provable no-op returning the same packet: an
    /// empty tail-drop FIFO (capacity >= 1 guarantees acceptance, nothing
    /// is ever marked, and byte/drop accounting nets to zero). The link
    /// uses this to skip the buffer round-trip when its transmitter is
    /// idle, which is the common case on uncongested access links.
    #[inline]
    pub(crate) fn is_empty_droptail(&self) -> bool {
        matches!(self, AnyQueue::DropTail(q) if q.len_packets() == 0)
    }

    /// Deep-copies this queue for checkpoint/fork. The stock disciplines
    /// (including RED's seeded RNG position) clone faithfully;
    /// [`AnyQueue::Custom`] cannot be cloned through the trait object, so
    /// it returns `None` and the owning simulator's checkpoint fails —
    /// the caller falls back to a cold run.
    pub(crate) fn try_clone(&self) -> Option<AnyQueue> {
        match self {
            AnyQueue::DropTail(q) => Some(AnyQueue::DropTail(q.clone())),
            AnyQueue::Red(q) => Some(AnyQueue::Red(q.clone())),
            AnyQueue::Acc(q) => Some(AnyQueue::Acc(q.clone())),
            AnyQueue::Custom(_) => None,
        }
    }
}

impl QueueDiscipline for AnyQueue {
    #[inline]
    fn enqueue(&mut self, packet: Packet, now: SimTime) -> EnqueueOutcome {
        match self {
            AnyQueue::DropTail(q) => q.enqueue(packet, now),
            AnyQueue::Red(q) => q.enqueue(packet, now),
            AnyQueue::Acc(q) => q.enqueue(packet, now),
            AnyQueue::Custom(q) => q.enqueue(packet, now),
        }
    }

    #[inline]
    fn dequeue(&mut self, now: SimTime) -> Option<Packet> {
        match self {
            AnyQueue::DropTail(q) => q.dequeue(now),
            AnyQueue::Red(q) => q.dequeue(now),
            AnyQueue::Acc(q) => q.dequeue(now),
            AnyQueue::Custom(q) => q.dequeue(now),
        }
    }

    fn len_packets(&self) -> usize {
        match self {
            AnyQueue::DropTail(q) => q.len_packets(),
            AnyQueue::Red(q) => q.len_packets(),
            AnyQueue::Acc(q) => q.len_packets(),
            AnyQueue::Custom(q) => q.len_packets(),
        }
    }

    fn len_bytes(&self) -> Bytes {
        match self {
            AnyQueue::DropTail(q) => q.len_bytes(),
            AnyQueue::Red(q) => q.len_bytes(),
            AnyQueue::Acc(q) => q.len_bytes(),
            AnyQueue::Custom(q) => q.len_bytes(),
        }
    }

    fn capacity_packets(&self) -> usize {
        match self {
            AnyQueue::DropTail(q) => q.capacity_packets(),
            AnyQueue::Red(q) => q.capacity_packets(),
            AnyQueue::Acc(q) => q.capacity_packets(),
            AnyQueue::Custom(q) => q.capacity_packets(),
        }
    }

    fn drops(&self) -> u64 {
        match self {
            AnyQueue::DropTail(q) => q.drops(),
            AnyQueue::Red(q) => q.drops(),
            AnyQueue::Acc(q) => q.drops(),
            AnyQueue::Custom(q) => q.drops(),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            AnyQueue::DropTail(q) => q.name(),
            AnyQueue::Red(q) => q.name(),
            AnyQueue::Acc(q) => q.name(),
            AnyQueue::Custom(q) => q.name(),
        }
    }

    /// Forwards to the *inner* discipline, so downcasts like
    /// `as_any().downcast_ref::<RedQueue>()` keep working unchanged.
    fn as_any(&self) -> &dyn std::any::Any {
        match self {
            AnyQueue::DropTail(q) => q.as_any(),
            AnyQueue::Red(q) => q.as_any(),
            AnyQueue::Acc(q) => q.as_any(),
            AnyQueue::Custom(q) => q.as_any(),
        }
    }
}

impl std::fmt::Debug for AnyQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnyQueue")
            .field("discipline", &self.name())
            .field("backlog", &self.len_packets())
            .finish()
    }
}

impl From<DropTailQueue> for AnyQueue {
    fn from(q: DropTailQueue) -> Self {
        AnyQueue::DropTail(q)
    }
}

impl From<RedQueue> for AnyQueue {
    fn from(q: RedQueue) -> Self {
        AnyQueue::Red(q)
    }
}

impl From<AccQueue> for AnyQueue {
    fn from(q: AccQueue) -> Self {
        AnyQueue::Acc(q)
    }
}

impl From<Box<dyn QueueDiscipline>> for AnyQueue {
    fn from(q: Box<dyn QueueDiscipline>) -> Self {
        AnyQueue::Custom(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;
    use crate::packet::{FlowId, PacketKind};

    pub(crate) fn pkt(size: u64) -> Packet {
        Packet::new(
            FlowId::from_u32(0),
            NodeId::from_u32(0),
            NodeId::from_u32(1),
            Bytes::from_u64(size),
            PacketKind::Background,
        )
    }

    #[test]
    fn spec_builds_matching_discipline() {
        let bw = BitsPerSec::from_mbps(15.0);
        let dt = QueueSpec::DropTail { capacity: 10 }.build(bw, 1);
        assert_eq!(dt.name(), "droptail");
        assert_eq!(dt.capacity_packets(), 10);
        let red = QueueSpec::Red(RedConfig::ns2_default(50)).build(bw, 1);
        assert_eq!(red.name(), "red");
        assert_eq!(red.capacity_packets(), 50);
        assert_eq!(
            QueueSpec::Red(RedConfig::ns2_default(50)).capacity_packets(),
            50
        );
    }

    #[test]
    fn any_queue_forwards_as_any_to_inner() {
        let bw = BitsPerSec::from_mbps(15.0);
        let red = QueueSpec::Red(RedConfig::ns2_default(50)).build(bw, 1);
        assert!(red.as_any().downcast_ref::<RedQueue>().is_some());
        let custom: AnyQueue = (Box::new(DropTailQueue::new(4)) as Box<dyn QueueDiscipline>).into();
        assert_eq!(custom.name(), "droptail");
        assert!(custom.as_any().downcast_ref::<DropTailQueue>().is_some());
        let mut q: AnyQueue = DropTailQueue::new(1).into();
        assert!(q.enqueue(pkt(100), SimTime::ZERO).is_accepted());
        assert!(q.enqueue(pkt(100), SimTime::ZERO).is_drop());
        assert_eq!(q.len_packets(), 1);
        assert_eq!(q.len_bytes(), Bytes::from_u64(100));
        assert_eq!(q.capacity_packets(), 1);
        assert_eq!(q.drops(), 1);
        assert!(q.dequeue(SimTime::ZERO).is_some());
    }

    #[test]
    fn outcome_predicate() {
        assert!(EnqueueOutcome::Dropped.is_drop());
        assert!(!EnqueueOutcome::Enqueued.is_drop());
        assert!(!EnqueueOutcome::EnqueuedMarked.is_drop());
        assert!(EnqueueOutcome::EnqueuedMarked.is_accepted());
        assert!(!EnqueueOutcome::Dropped.is_accepted());
    }
}
