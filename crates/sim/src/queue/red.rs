//! Random Early Detection (RED), after Floyd & Jacobson, with the `gentle_`
//! extension used by the paper's test-bed (§4.2).
//!
//! The implementation follows the canonical algorithm:
//!
//! * exponentially weighted moving average `avg` of the instantaneous queue
//!   length in packets, weight `w_q`;
//! * while the queue is idle the average decays as if `m` small packets had
//!   departed, `m = idle_time / s` with `s` the mean packet service time;
//! * between `min_th` and `max_th` the early-drop probability ramps from 0
//!   to `max_p` and is corrected by the inter-drop count so that drops are
//!   roughly uniform;
//! * with `gentle`, between `max_th` and `2*max_th` it ramps from `max_p`
//!   to 1 instead of jumping to a forced drop.

use super::{EnqueueOutcome, QueueDiscipline};
use crate::packet::{Ecn, Packet};
use crate::time::SimTime;
use crate::units::{BitsPerSec, Bytes};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// RED parameters.
///
/// All thresholds are measured in packets, like ns-2's queue-length mode.
#[derive(Debug, Clone, PartialEq)]
pub struct RedConfig {
    /// Hard buffer capacity in packets (tail drop beyond this).
    pub capacity: usize,
    /// Lower average-queue threshold; below it no packet is early-dropped.
    pub min_th: f64,
    /// Upper average-queue threshold.
    pub max_th: f64,
    /// EWMA weight for the average queue size.
    pub w_q: f64,
    /// Maximum early-drop probability at `max_th`.
    pub max_p: f64,
    /// Enable the gentle ramp between `max_th` and `2*max_th`.
    pub gentle: bool,
    /// Mark ECN-capable packets instead of early-dropping them (RFC 3168
    /// style). Forced drops (hard region / full buffer) still drop.
    pub ecn: bool,
    /// Mean packet size used to convert idle time into equivalent packet
    /// departures for the idle decay.
    pub mean_packet_size: Bytes,
}

impl RedConfig {
    /// Classic ns-2-style defaults (`min_th = 5`, `max_th = 15`,
    /// `w_q = 0.002`, `max_p = 0.1`, gentle on) with the given hard
    /// capacity.
    pub fn ns2_default(capacity: usize) -> Self {
        RedConfig {
            capacity,
            min_th: 5.0,
            max_th: 15.0,
            w_q: 0.002,
            max_p: 0.1,
            gentle: true,
            ecn: false,
            mean_packet_size: Bytes::from_u64(1000),
        }
    }

    /// The paper's test-bed configuration (§4.2): thresholds placed at 20%
    /// and 80% of the buffer sized by the rule of thumb `B = RTT x R_bottle`,
    /// `w_q = 0.002`, `max_p = 0.1`, `gentle_ = true`.
    pub fn paper_testbed(buffer_packets: usize) -> Self {
        let b = buffer_packets as f64;
        RedConfig {
            capacity: buffer_packets,
            min_th: 0.2 * b,
            max_th: 0.8 * b,
            w_q: 0.002,
            max_p: 0.1,
            gentle: true,
            ecn: false,
            mean_packet_size: Bytes::from_u64(1000),
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when a parameter is out of range
    /// (`min_th >= max_th`, probabilities outside `(0, 1]`, …).
    pub fn validate(&self) -> Result<(), String> {
        if self.capacity == 0 {
            return Err("capacity must be at least 1 packet".into());
        }
        if !(self.min_th >= 0.0 && self.min_th < self.max_th) {
            return Err(format!(
                "need 0 <= min_th < max_th, got min_th={} max_th={}",
                self.min_th, self.max_th
            ));
        }
        if !(self.w_q > 0.0 && self.w_q <= 1.0) {
            return Err(format!("w_q must be in (0,1], got {}", self.w_q));
        }
        if !(self.max_p > 0.0 && self.max_p <= 1.0) {
            return Err(format!("max_p must be in (0,1], got {}", self.max_p));
        }
        if self.mean_packet_size == Bytes::ZERO {
            return Err("mean_packet_size must be positive".into());
        }
        Ok(())
    }
}

/// A RED queue instance.
#[derive(Debug, Clone)]
pub struct RedQueue {
    cfg: RedConfig,
    buf: VecDeque<Packet>,
    bytes: Bytes,
    avg: f64,
    /// Packets enqueued since the last early drop; -1 right after a drop,
    /// following Floyd's pseudocode.
    count: i64,
    idle_since: Option<SimTime>,
    mean_service_time_s: f64,
    rng: SmallRng,
    drops: u64,
    early_drops: u64,
    forced_drops: u64,
    ecn_marks: u64,
}

impl RedQueue {
    /// Creates a RED queue draining at `bandwidth`, with early-drop
    /// randomness seeded by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`RedConfig::validate`] or `bandwidth` is zero.
    pub fn new(cfg: RedConfig, bandwidth: BitsPerSec, seed: u64) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid RED configuration: {e}");
        }
        assert!(!bandwidth.is_zero(), "RED needs a positive drain rate");
        let mean_service_time_s = cfg.mean_packet_size.as_bits() as f64 / bandwidth.as_bps();
        RedQueue {
            buf: VecDeque::with_capacity(cfg.capacity.min(4096)),
            bytes: Bytes::ZERO,
            avg: 0.0,
            count: -1,
            idle_since: Some(SimTime::ZERO),
            mean_service_time_s,
            rng: SmallRng::seed_from_u64(seed),
            drops: 0,
            early_drops: 0,
            forced_drops: 0,
            ecn_marks: 0,
            cfg,
        }
    }

    /// The current average queue estimate, in packets.
    pub fn avg_queue(&self) -> f64 {
        self.avg
    }

    /// The early-drop probability `p_b` implied by the current average
    /// queue (0 below `min_th`), before Floyd's inter-drop count
    /// correction.
    ///
    /// For a fixed configuration this is non-decreasing in the average
    /// queue and confined to `[0, 1]` — the monotonicity contract the
    /// runtime checkers enforce.
    pub fn drop_probability(&self) -> f64 {
        self.base_drop_prob().unwrap_or(0.0)
    }

    /// Early (probabilistic) drops so far.
    pub fn early_drops(&self) -> u64 {
        self.early_drops
    }

    /// Forced drops (average beyond the hard region, or buffer full).
    pub fn forced_drops(&self) -> u64 {
        self.forced_drops
    }

    /// ECN congestion-experienced marks applied so far.
    pub fn ecn_marks(&self) -> u64 {
        self.ecn_marks
    }

    fn update_avg_on_arrival(&mut self, now: SimTime) {
        if let Some(idle_start) = self.idle_since.take() {
            // Queue was empty: decay the average as if m packets departed.
            let idle = now.saturating_since(idle_start).as_secs_f64();
            let m = (idle / self.mean_service_time_s).floor();
            self.avg *= (1.0 - self.cfg.w_q).powf(m);
        }
        self.avg += self.cfg.w_q * (self.buf.len() as f64 - self.avg);
    }

    /// Early-drop probability for the current average, before the inter-drop
    /// count correction. `None` means "no early drop consideration".
    fn base_drop_prob(&self) -> Option<f64> {
        let RedConfig {
            min_th,
            max_th,
            max_p,
            gentle,
            ..
        } = self.cfg;
        if self.avg < min_th {
            None
        } else if self.avg < max_th {
            Some(max_p * (self.avg - min_th) / (max_th - min_th))
        } else if gentle && self.avg < 2.0 * max_th {
            Some(max_p + (1.0 - max_p) * (self.avg - max_th) / max_th)
        } else {
            Some(1.0)
        }
    }

    fn should_early_drop(&mut self) -> bool {
        let Some(pb) = self.base_drop_prob() else {
            self.count = -1;
            return false;
        };
        if pb >= 1.0 {
            self.count = 0;
            return true;
        }
        self.count += 1;
        // Floyd's uniformization: pa = pb / (1 - count*pb), clamped.
        let denom = 1.0 - self.count as f64 * pb;
        let pa = if denom <= 0.0 {
            1.0
        } else {
            (pb / denom).min(1.0)
        };
        if self.rng.random::<f64>() < pa {
            self.count = 0;
            true
        } else {
            false
        }
    }
}

impl QueueDiscipline for RedQueue {
    fn enqueue(&mut self, mut packet: Packet, now: SimTime) -> EnqueueOutcome {
        self.update_avg_on_arrival(now);
        let mut marked = false;
        if self.should_early_drop() {
            if self.cfg.ecn && packet.ecn.is_markable() && self.avg < self.cfg.max_th {
                // RFC 3168: in the probabilistic region, mark instead of
                // dropping an ECN-capable packet. Beyond max_th RED still
                // drops (the signal must not saturate).
                packet.ecn = Ecn::CongestionExperienced;
                self.ecn_marks += 1;
                marked = true;
            } else {
                self.drops += 1;
                self.early_drops += 1;
                return EnqueueOutcome::Dropped;
            }
        }
        if self.buf.len() >= self.cfg.capacity {
            self.drops += 1;
            self.forced_drops += 1;
            // ns-2 resets count on forced drops as well.
            self.count = 0;
            return EnqueueOutcome::Dropped;
        }
        self.bytes += packet.size;
        self.buf.push_back(packet);
        if marked {
            EnqueueOutcome::EnqueuedMarked
        } else {
            EnqueueOutcome::Enqueued
        }
    }

    fn dequeue(&mut self, now: SimTime) -> Option<Packet> {
        let p = self.buf.pop_front()?;
        self.bytes = self.bytes - p.size;
        if self.buf.is_empty() {
            self.idle_since = Some(now);
        }
        Some(p)
    }

    fn len_packets(&self) -> usize {
        self.buf.len()
    }

    fn len_bytes(&self) -> Bytes {
        self.bytes
    }

    fn capacity_packets(&self) -> usize {
        self.cfg.capacity
    }

    fn drops(&self) -> u64 {
        self.drops
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn name(&self) -> &'static str {
        "red"
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::pkt;
    use super::*;

    fn queue(capacity: usize) -> RedQueue {
        RedQueue::new(
            RedConfig::ns2_default(capacity),
            BitsPerSec::from_mbps(15.0),
            7,
        )
    }

    #[test]
    fn below_min_th_never_drops() {
        let mut q = queue(100);
        // avg stays near zero for the first few arrivals (w_q = 0.002).
        for _ in 0..5 {
            assert_eq!(
                q.enqueue(pkt(1000), SimTime::ZERO),
                EnqueueOutcome::Enqueued
            );
        }
        assert_eq!(q.drops(), 0);
        assert!(q.avg_queue() < 5.0);
    }

    #[test]
    fn sustained_congestion_triggers_early_drops() {
        let mut q = queue(1000);
        // Keep the instantaneous queue large without draining: the average
        // climbs past min_th and early drops must begin.
        let mut enqueued = 0u64;
        for i in 0..5000 {
            let t = SimTime::from_nanos(i);
            if q.enqueue(pkt(1000), t) == EnqueueOutcome::Enqueued {
                enqueued += 1;
            }
        }
        assert!(q.early_drops() > 0, "expected early drops under congestion");
        assert!(enqueued > 0);
        assert!(q.avg_queue() > 5.0);
    }

    #[test]
    fn gentle_region_ramps_to_certain_drop() {
        let mut cfg = RedConfig::ns2_default(10_000);
        cfg.min_th = 1.0;
        cfg.max_th = 2.0;
        cfg.w_q = 1.0; // avg == instantaneous queue for the test
        let mut q = RedQueue::new(cfg, BitsPerSec::from_mbps(15.0), 7);
        // Fill far past 2*max_th; with avg >= 2*max_th every arrival drops.
        for i in 0..50 {
            q.enqueue(pkt(1000), SimTime::from_nanos(i));
        }
        let len = q.len_packets();
        let before = q.drops();
        for i in 0..20 {
            assert!(q
                .enqueue(pkt(1000), SimTime::from_nanos(1000 + i))
                .is_drop());
        }
        assert_eq!(q.drops(), before + 20);
        assert_eq!(q.len_packets(), len);
    }

    #[test]
    fn idle_period_decays_average() {
        let mut cfg = RedConfig::ns2_default(100);
        cfg.w_q = 0.5;
        let mut q = RedQueue::new(cfg, BitsPerSec::from_mbps(15.0), 7);
        for i in 0..20 {
            q.enqueue(pkt(1000), SimTime::from_nanos(i));
        }
        let avg_loaded = q.avg_queue();
        assert!(avg_loaded > 1.0);
        // Drain fully, then stay idle for a long time.
        while q.dequeue(SimTime::from_millis(1)).is_some() {}
        let _ = q.enqueue(pkt(1000), SimTime::from_secs(10));
        assert!(
            q.avg_queue() < avg_loaded / 2.0,
            "average should decay over idle time: {} -> {}",
            avg_loaded,
            q.avg_queue()
        );
    }

    #[test]
    fn hard_capacity_enforced() {
        let mut q = queue(3);
        let mut stored = 0;
        for i in 0..10 {
            if q.enqueue(pkt(1000), SimTime::from_nanos(i)) == EnqueueOutcome::Enqueued {
                stored += 1;
            }
        }
        assert!(stored <= 3);
        assert!(q.forced_drops() > 0 || q.early_drops() > 0);
    }

    #[test]
    fn determinism_same_seed_same_decisions() {
        let run = |seed: u64| {
            let mut q = RedQueue::new(
                RedConfig::ns2_default(60),
                BitsPerSec::from_mbps(15.0),
                seed,
            );
            // Interleave dequeues so the average stays in the probabilistic
            // band (min_th..max_th) where the seed actually matters.
            (0..5000u64)
                .map(|i| {
                    if i % 3 == 0 {
                        let _ = q.dequeue(SimTime::from_nanos(i));
                    }
                    q.enqueue(pkt(1000), SimTime::from_nanos(i)).is_drop()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds should differ somewhere");
    }

    #[test]
    fn config_validation_catches_bad_parameters() {
        let mut cfg = RedConfig::ns2_default(10);
        cfg.min_th = 20.0; // >= max_th
        assert!(cfg.validate().is_err());
        let mut cfg = RedConfig::ns2_default(10);
        cfg.w_q = 0.0;
        assert!(cfg.validate().is_err());
        let mut cfg = RedConfig::ns2_default(10);
        cfg.max_p = 1.5;
        assert!(cfg.validate().is_err());
        let mut cfg = RedConfig::ns2_default(10);
        cfg.capacity = 0;
        assert!(cfg.validate().is_err());
        assert!(RedConfig::ns2_default(10).validate().is_ok());
        assert!(RedConfig::paper_testbed(125).validate().is_ok());
    }

    #[test]
    fn paper_testbed_thresholds() {
        let cfg = RedConfig::paper_testbed(100);
        assert_eq!(cfg.min_th, 20.0);
        assert_eq!(cfg.max_th, 80.0);
        assert!(cfg.gentle);
    }

    proptest::proptest! {
        /// The buffer never exceeds capacity and byte accounting stays
        /// consistent, whatever the arrival pattern.
        #[test]
        fn prop_capacity_and_bytes(ops in proptest::collection::vec((proptest::bool::ANY, 40u64..1500), 1..400)) {
            let mut q = queue(16);
            let mut t = 0u64;
            let mut model_bytes: u64 = 0;
            let mut model_len: usize = 0;
            for (is_enq, size) in ops {
                t += 1;
                if is_enq {
                    if q.enqueue(pkt(size), SimTime::from_nanos(t)) == EnqueueOutcome::Enqueued {
                        model_bytes += size;
                        model_len += 1;
                    }
                } else if let Some(p) = q.dequeue(SimTime::from_nanos(t)) {
                    model_bytes -= p.size.as_u64();
                    model_len -= 1;
                }
                proptest::prop_assert!(q.len_packets() <= 16);
                proptest::prop_assert_eq!(q.len_packets(), model_len);
                proptest::prop_assert_eq!(q.len_bytes().as_u64(), model_bytes);
                proptest::prop_assert!(q.avg_queue() >= 0.0);
            }
        }

        /// The base drop probability is non-decreasing in the average
        /// queue and stays in `[0, 1]` across the whole range — including
        /// the gentle region between `max_th` and `2*max_th` — for
        /// arbitrary threshold placements.
        #[test]
        fn prop_drop_probability_monotone_in_avg(
            params in (0.5f64..50.0, 0.5f64..50.0, 0.05f64..1.0),
            avgs in proptest::collection::vec(0.0f64..200.0, 2..40)
        ) {
            let (min_th, span, max_p) = params;
            let mut cfg = RedConfig::ns2_default(10_000);
            cfg.min_th = min_th;
            cfg.max_th = min_th + span;
            cfg.max_p = max_p;
            let mut q = RedQueue::new(cfg, BitsPerSec::from_mbps(15.0), 7);
            let mut sorted = avgs;
            sorted.sort_by(f64::total_cmp);
            let mut last_p = -1.0;
            for avg in sorted {
                q.avg = avg;
                let p = q.drop_probability();
                proptest::prop_assert!(
                    (0.0..=1.0).contains(&p),
                    "p_b {p} outside [0,1] at avg {avg}"
                );
                proptest::prop_assert!(
                    p >= last_p - 1e-12,
                    "p_b decreased {last_p} -> {p} as avg rose to {avg}"
                );
                last_p = p;
            }
            // Beyond the gentle region the drop is certain.
            q.avg = 2.0 * q.cfg.max_th;
            proptest::prop_assert_eq!(q.drop_probability(), 1.0);
            // Below min_th no early drop is ever considered.
            q.avg = 0.0;
            proptest::prop_assert_eq!(q.drop_probability(), 0.0);
        }
    }
}
