//! Static shortest-path routing.
//!
//! Routes are computed once at build time with a per-destination BFS over
//! the link graph (minimum hop count; ties broken by lowest link id, which
//! keeps routing deterministic). This matches the static routing ns-2 uses
//! for the paper's dumbbell topologies.

use crate::link::LinkId;
use crate::node::NodeId;
use std::collections::VecDeque;

/// A precomputed next-hop table: `next_link(src, dst)` is the outgoing link
/// a packet at `src` takes toward `dst`.
#[derive(Debug, Clone)]
pub struct RoutingTable {
    n_nodes: usize,
    /// Row-major `table[src * n_nodes + dst]` = outgoing link, or `None`
    /// when unreachable (or `src == dst`). Flat so the per-forward lookup
    /// is one indexed load instead of chasing a nested `Vec`.
    table: Vec<Option<LinkId>>,
}

impl RoutingTable {
    /// Computes the table from the directed link list `(id, src, dst)`.
    pub fn compute(n_nodes: usize, links: &[(LinkId, NodeId, NodeId)]) -> Self {
        // adjacency: for each node, outgoing (link, dst), sorted by link id
        // for determinism.
        let mut adj: Vec<Vec<(LinkId, NodeId)>> = vec![Vec::new(); n_nodes];
        for &(id, src, dst) in links {
            adj[src.index()].push((id, dst));
        }
        for out in &mut adj {
            out.sort_by_key(|(id, _)| *id);
        }

        // reverse adjacency for BFS from each destination.
        let mut radj: Vec<Vec<(LinkId, NodeId)>> = vec![Vec::new(); n_nodes];
        for &(id, src, dst) in links {
            radj[dst.index()].push((id, src));
        }
        for rin in &mut radj {
            rin.sort_by_key(|(id, _)| *id);
        }

        let mut table = vec![None; n_nodes * n_nodes];
        for dst in 0..n_nodes {
            // BFS on reversed edges from dst; when we relax edge (link,
            // src -> dst-side node u), `link` is src's next hop toward dst
            // if src was previously unvisited.
            let mut dist = vec![usize::MAX; n_nodes];
            dist[dst] = 0;
            let mut q = VecDeque::new();
            q.push_back(dst);
            while let Some(u) = q.pop_front() {
                for &(link, src) in &radj[u] {
                    if dist[src.index()] == usize::MAX {
                        dist[src.index()] = dist[u] + 1;
                        table[src.index() * n_nodes + dst] = Some(link);
                        q.push_back(src.index());
                    }
                }
            }
        }
        RoutingTable { n_nodes, table }
    }

    /// The outgoing link from `src` toward `dst`, or `None` when `dst` is
    /// unreachable or equal to `src`.
    #[inline]
    pub fn next_link(&self, src: NodeId, dst: NodeId) -> Option<LinkId> {
        self.table[src.index() * self.n_nodes + dst.index()]
    }

    /// Number of nodes the table covers.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Whether `dst` is reachable from `src`.
    pub fn reachable(&self, src: NodeId, dst: NodeId) -> bool {
        src == dst || self.next_link(src, dst).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u32) -> NodeId {
        NodeId::from_u32(v)
    }
    fn l(v: u32) -> LinkId {
        LinkId::from_u32(v)
    }

    /// A 4-node chain 0 -1- 2 -3 with duplex links.
    fn chain() -> RoutingTable {
        let links = vec![
            (l(0), n(0), n(1)),
            (l(1), n(1), n(0)),
            (l(2), n(1), n(2)),
            (l(3), n(2), n(1)),
            (l(4), n(2), n(3)),
            (l(5), n(3), n(2)),
        ];
        RoutingTable::compute(4, &links)
    }

    #[test]
    fn chain_routes_hop_by_hop() {
        let rt = chain();
        assert_eq!(rt.next_link(n(0), n(3)), Some(l(0)));
        assert_eq!(rt.next_link(n(1), n(3)), Some(l(2)));
        assert_eq!(rt.next_link(n(2), n(3)), Some(l(4)));
        assert_eq!(rt.next_link(n(3), n(0)), Some(l(5)));
        assert_eq!(rt.next_link(n(2), n(0)), Some(l(3)));
    }

    #[test]
    fn self_route_is_none_but_reachable() {
        let rt = chain();
        assert_eq!(rt.next_link(n(2), n(2)), None);
        assert!(rt.reachable(n(2), n(2)));
    }

    #[test]
    fn unreachable_destination() {
        // Two disconnected nodes.
        let rt = RoutingTable::compute(2, &[]);
        assert_eq!(rt.next_link(n(0), n(1)), None);
        assert!(!rt.reachable(n(0), n(1)));
        assert_eq!(rt.n_nodes(), 2);
    }

    #[test]
    fn shortest_path_preferred_over_detour() {
        // 0 -> 1 -> 3 (two hops) and 0 -> 2 -> ... no, give 0->3 direct too.
        let links = vec![
            (l(0), n(0), n(1)),
            (l(1), n(1), n(3)),
            (l(2), n(0), n(3)), // direct, one hop
        ];
        let rt = RoutingTable::compute(4, &links);
        assert_eq!(rt.next_link(n(0), n(3)), Some(l(2)));
    }

    #[test]
    fn dumbbell_routes_through_bottleneck() {
        // hosts 0,1 -> router 2 -> router 3 -> hosts 4,5 (duplex).
        let mut links = Vec::new();
        let mut id = 0;
        let mut duplex = |a: u32, b: u32, links: &mut Vec<(LinkId, NodeId, NodeId)>| {
            links.push((l(id), n(a), n(b)));
            id += 1;
            links.push((l(id), n(b), n(a)));
            id += 1;
        };
        duplex(0, 2, &mut links);
        duplex(1, 2, &mut links);
        duplex(2, 3, &mut links);
        duplex(3, 4, &mut links);
        duplex(3, 5, &mut links);
        let rt = RoutingTable::compute(6, &links);
        // host 0 to host 4 goes via its access link then the bottleneck.
        let first = rt.next_link(n(0), n(4)).unwrap();
        assert_eq!(first, l(0));
        let second = rt.next_link(n(2), n(4)).unwrap();
        assert_eq!(second, l(4)); // 2->3 bottleneck link
        assert_eq!(rt.next_link(n(3), n(4)), Some(l(6)));
        // reverse path for ACKs
        assert_eq!(rt.next_link(n(4), n(0)), Some(l(7)));
        assert_eq!(rt.next_link(n(3), n(0)), Some(l(5)));
    }
}
