//! Topology sharding for conservative-lookahead parallel simulation.
//!
//! A [`ShardPlan`] cuts the node graph into link-delay-separated shards:
//! nodes joined by low-latency links stay together, and the minimum
//! propagation delay of the links that *cross* shards becomes the
//! **lookahead** — the width of the synchronization window the engine can
//! advance every shard through without any shard observing an event from
//! another shard's future. Propagation jitter is purely additive (see
//! `Link::sample_delay`), so the configured base delay is a true lower
//! bound on every cross-shard packet's flight time.
//!
//! # Determinism contract
//!
//! The plan itself is a pure function of the topology and the requested
//! shard count. At run time, cross-shard packets travel through per-shard
//! outboxes that the coordinator drains in a fixed `(shard id, push
//! order)` sequence — see [`merge_outboxes`] — and are injected into the
//! destination shard's event queue carrying the clock time of their
//! *sending* shard as the tie-break key (`EventQueue::inject`). Results
//! are therefore bit-identical regardless of worker count or thread
//! interleaving, and — because the tie-break reproduces the unsharded
//! scheduling order — identical to a single-shard run.

use crate::node::NodeId;
use crate::packet::Packet;
use crate::time::{SimDuration, SimTime};

/// A partition of the topology's nodes into delay-separated shards.
///
/// Build one with [`ShardPlan::build`]; the engine consumes it via
/// `Simulator::enable_sharding` / `Simulator::with_shards`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// Shard index per node, indexed by `NodeId::index()`.
    node_shard: Vec<usize>,
    /// Number of shards (always ≥ 1; 1 means "do not shard").
    n_shards: usize,
    /// Minimum propagation delay over links whose endpoints live in
    /// different shards; `None` when no link crosses shards (fully
    /// independent shards — the sync window is unbounded).
    lookahead: Option<SimDuration>,
}

impl ShardPlan {
    /// A trivial single-shard plan (the legacy engine).
    pub fn single(n_nodes: usize) -> ShardPlan {
        ShardPlan {
            node_shard: vec![0; n_nodes],
            n_shards: 1,
            lookahead: None,
        }
    }

    /// Partitions `n_nodes` nodes, connected by `links` (as
    /// `(src, dst, base propagation delay)` triples), into at most
    /// `target_shards` shards.
    ///
    /// The cut maximizes the lookahead subject to producing
    /// `min(target_shards, n_nodes)` shards: candidate thresholds are the
    /// distinct link delays (tried largest-first); for a threshold θ every
    /// link with delay `< θ` is contracted, and the threshold is accepted
    /// when the contracted graph still has at least the target number of
    /// components. Components are then packed onto shards largest-first
    /// onto the least-loaded shard, which keeps every shard non-empty and
    /// is fully deterministic. The reported lookahead is recomputed from
    /// the final assignment (packing can turn a would-be cross link into
    /// an intra-shard link), so it is exactly the minimum cross-shard
    /// delay.
    ///
    /// Falls back to [`ShardPlan::single`] when `target_shards ≤ 1`, the
    /// graph cannot be cut (fewer nodes than shards requested and no
    /// separation exists), or every candidate cut would leave a
    /// zero-delay link crossing shards (zero lookahead cannot bound a
    /// sync window).
    pub fn build(
        n_nodes: usize,
        links: &[(NodeId, NodeId, SimDuration)],
        target_shards: usize,
    ) -> ShardPlan {
        let target = target_shards.min(n_nodes);
        if target <= 1 {
            return ShardPlan::single(n_nodes);
        }
        // Candidate thresholds, largest first. `None` stands for "merge
        // every link" (θ = ∞): accepted only when the topology is already
        // disconnected into enough components.
        let mut delays: Vec<SimDuration> = links.iter().map(|&(_, _, d)| d).collect();
        delays.sort_unstable();
        delays.dedup();
        let mut candidates: Vec<Option<SimDuration>> = vec![None];
        candidates.extend(delays.iter().rev().map(|&d| Some(d)));
        for theta in candidates {
            let mut uf = UnionFind::new(n_nodes);
            for &(src, dst, delay) in links {
                let merge = match theta {
                    None => true,
                    Some(theta) => delay < theta,
                };
                if merge {
                    uf.union(src.index(), dst.index());
                }
            }
            if uf.components() < target {
                continue;
            }
            let plan = Self::pack(n_nodes, links, &mut uf, target);
            // A cut whose crossing links include a zero-delay link gives a
            // zero-width sync window; keep looking for a coarser cut (a
            // larger θ was already rejected, so give up and stay single).
            if plan.lookahead.is_some_and(|l| l.is_zero()) {
                return ShardPlan::single(n_nodes);
            }
            return plan;
        }
        ShardPlan::single(n_nodes)
    }

    /// Packs the union-find components onto `target` shards,
    /// largest-component-first onto the least-loaded shard.
    fn pack(
        n_nodes: usize,
        links: &[(NodeId, NodeId, SimDuration)],
        uf: &mut UnionFind,
        target: usize,
    ) -> ShardPlan {
        // Component roots in deterministic order: (size desc, min node asc).
        let mut comp_min: Vec<Option<(usize, usize)>> = vec![None; n_nodes]; // root -> (size, min node)
        for node in 0..n_nodes {
            let root = uf.find(node);
            let entry = comp_min[root].get_or_insert((0, node));
            entry.0 += 1;
            entry.1 = entry.1.min(node);
        }
        let mut comps: Vec<(usize, usize, usize)> = comp_min
            .iter()
            .enumerate()
            .filter_map(|(root, e)| e.map(|(size, min_node)| (size, min_node, root)))
            .collect();
        comps.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let mut load = vec![0usize; target];
        let mut root_shard = vec![0usize; n_nodes];
        for (size, _, root) in comps {
            let shard = (0..target)
                .min_by_key(|&s| (load[s], s))
                .expect("target ≥ 1");
            load[shard] += size;
            root_shard[root] = shard;
        }
        let node_shard: Vec<usize> = (0..n_nodes).map(|n| root_shard[uf.find(n)]).collect();
        let lookahead = links
            .iter()
            .filter(|&&(src, dst, _)| node_shard[src.index()] != node_shard[dst.index()])
            .map(|&(_, _, d)| d)
            .min();
        ShardPlan {
            node_shard,
            n_shards: target,
            lookahead,
        }
    }

    /// Number of shards (1 means unsharded).
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// Whether the plan is the trivial single-shard plan.
    pub fn is_single(&self) -> bool {
        self.n_shards <= 1
    }

    /// Shard index per node, indexed by `NodeId::index()`.
    pub fn node_shard(&self) -> &[usize] {
        &self.node_shard
    }

    /// The shard `node` lives in.
    pub fn shard_of(&self, node: NodeId) -> usize {
        self.node_shard[node.index()]
    }

    /// The sync window width: the minimum propagation delay over
    /// cross-shard links. `None` when no link crosses shards.
    pub fn lookahead(&self) -> Option<SimDuration> {
        self.lookahead
    }
}

/// Plain array-based union-find with path halving.
struct UnionFind {
    parent: Vec<usize>,
    components: usize,
}

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n).collect(),
            components: n,
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Deterministic: the smaller root index wins.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
            self.components -= 1;
        }
    }

    fn components(&self) -> usize {
        self.components
    }
}

/// A packet in flight between shards: everything the destination shard
/// needs to re-materialize the `Deliver` event exactly where the
/// unsharded engine would have scheduled it.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CrossPacket {
    /// Delivery instant (sending shard's clock + sampled link delay).
    pub(crate) at: SimTime,
    /// The sending shard's clock when the packet left the wire — the
    /// tie-break key reproducing unsharded scheduling order.
    pub(crate) sched: SimTime,
    /// Destination node.
    pub(crate) node: NodeId,
    /// The packet itself, by value (arenas are per-shard).
    pub(crate) packet: Packet,
}

/// Per-shard identity handed to a shard's private `Simulator`: which
/// shard it is, the global node→shard map, and the outbox collecting
/// packets bound for other shards during a round.
#[derive(Debug, Clone)]
pub(crate) struct ShardMembership {
    pub(crate) shard: usize,
    pub(crate) node_shard: Vec<usize>,
    pub(crate) outbox: Vec<CrossPacket>,
}

impl ShardMembership {
    /// Whether `node` lives outside this shard.
    #[inline]
    pub(crate) fn is_remote(&self, node: NodeId) -> bool {
        self.node_shard[node.index()] != self.shard
    }
}

/// Merges per-shard outboxes into the canonical injection sequence:
/// ascending shard id, then push order within a shard.
///
/// `replies` may arrive in any order (worker threads finish whenever they
/// finish); the output is invariant under that order, which is the heart
/// of the sharded engine's determinism contract.
pub(crate) fn merge_outboxes(mut replies: Vec<(usize, Vec<CrossPacket>)>) -> Vec<CrossPacket> {
    replies.sort_by_key(|&(shard, _)| shard);
    replies.into_iter().flat_map(|(_, v)| v).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventQueue};
    use crate::packet::{FlowId, PacketArena, PacketKind};
    use crate::units::Bytes;

    fn n(i: u32) -> NodeId {
        NodeId::from_u32(i)
    }

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    /// A dumbbell: hosts 0,1 — (1ms) — router 2 — (5ms) — router 3 —
    /// (1ms) — hosts 4,5.
    fn dumbbell() -> (usize, Vec<(NodeId, NodeId, SimDuration)>) {
        let mut links = Vec::new();
        for (a, b, d) in [(0, 2, 1), (1, 2, 1), (2, 3, 5), (3, 4, 1), (3, 5, 1)] {
            links.push((n(a), n(b), ms(d)));
            links.push((n(b), n(a), ms(d)));
        }
        (6, links)
    }

    #[test]
    fn dumbbell_splits_at_the_bottleneck() {
        let (nodes, links) = dumbbell();
        let plan = ShardPlan::build(nodes, &links, 2);
        assert_eq!(plan.n_shards(), 2);
        assert_eq!(plan.lookahead(), Some(ms(5)));
        // The two access clusters end up on different shards.
        assert_eq!(plan.shard_of(n(0)), plan.shard_of(n(2)));
        assert_eq!(plan.shard_of(n(4)), plan.shard_of(n(3)));
        assert_ne!(plan.shard_of(n(2)), plan.shard_of(n(3)));
    }

    #[test]
    fn single_target_is_the_legacy_plan() {
        let (nodes, links) = dumbbell();
        let plan = ShardPlan::build(nodes, &links, 1);
        assert!(plan.is_single());
        assert_eq!(plan, ShardPlan::single(nodes));
        assert!(plan.node_shard().iter().all(|&s| s == 0));
    }

    #[test]
    fn disconnected_graph_has_unbounded_lookahead() {
        // Two islands, no links between them.
        let links = vec![(n(0), n(1), ms(1)), (n(2), n(3), ms(1))];
        let plan = ShardPlan::build(4, &links, 2);
        assert_eq!(plan.n_shards(), 2);
        assert_eq!(plan.lookahead(), None);
        assert_ne!(plan.shard_of(n(0)), plan.shard_of(n(2)));
    }

    #[test]
    fn zero_delay_cuts_fall_back_to_single() {
        // Every link has zero delay: no cut can bound a sync window.
        let links = vec![
            (n(0), n(1), SimDuration::ZERO),
            (n(1), n(2), SimDuration::ZERO),
        ];
        let plan = ShardPlan::build(3, &links, 2);
        assert!(plan.is_single());
    }

    fn plan_invariants(plan: &ShardPlan, n_nodes: usize, links: &[(NodeId, NodeId, SimDuration)]) {
        // Every node is assigned to exactly one shard, and every shard id
        // is in range.
        assert_eq!(plan.node_shard().len(), n_nodes);
        assert!(plan.node_shard().iter().all(|&s| s < plan.n_shards()));
        // Every shard is non-empty.
        let mut seen = vec![false; plan.n_shards()];
        for &s in plan.node_shard() {
            seen[s] = true;
        }
        assert!(seen.iter().all(|&s| s), "empty shard in {plan:?}");
        // The lookahead equals the true minimum cross-shard delay (and is
        // positive): every link crosses exactly one or zero shard
        // boundaries, so this is a direct scan.
        let true_min = links
            .iter()
            .filter(|&&(a, b, _)| plan.shard_of(a) != plan.shard_of(b))
            .map(|&(_, _, d)| d)
            .min();
        assert_eq!(plan.lookahead(), true_min);
        if let Some(l) = plan.lookahead() {
            assert!(!l.is_zero(), "zero lookahead cannot bound a sync window");
        }
    }

    proptest::proptest! {
        /// Property: on arbitrary random graphs, every plan satisfies the
        /// partition invariants — total assignment, in-range shard ids,
        /// non-empty shards, lookahead == true min cross-shard delay —
        /// and a target of 1 always degenerates to the legacy plan.
        #[test]
        fn prop_plan_invariants(
            n_nodes in 1usize..24,
            raw_links in proptest::collection::vec((0u32..24, 0u32..24, 0u64..20), 0..60),
            target in 1usize..6,
        ) {
            let links: Vec<(NodeId, NodeId, SimDuration)> = raw_links
                .iter()
                .map(|&(a, b, d)| (n(a % n_nodes as u32), n(b % n_nodes as u32), ms(d)))
                .collect();
            let plan = ShardPlan::build(n_nodes, &links, target);
            plan_invariants(&plan, n_nodes, &links);
            proptest::prop_assert!(plan.n_shards() <= target.min(n_nodes).max(1));
            if target <= 1 {
                proptest::prop_assert!(plan.is_single());
            }
            // Determinism: rebuilding yields the identical plan.
            proptest::prop_assert_eq!(&ShardPlan::build(n_nodes, &links, target), &plan);
        }
    }

    fn cross(at_ms: u64, sched_ms: u64, tag: u32) -> CrossPacket {
        CrossPacket {
            at: SimTime::from_millis(at_ms),
            sched: SimTime::from_millis(sched_ms),
            node: n(tag),
            packet: Packet::new(
                FlowId::from_u32(tag),
                n(0),
                n(tag),
                Bytes::from_u64(100),
                PacketKind::Background,
            ),
        }
    }

    proptest::proptest! {
        /// State-machine property: however worker replies are interleaved
        /// (modelled as an arbitrary permutation of the per-shard reply
        /// order), the merged injection sequence is canonical — and
        /// feeding it into an event queue yields one canonical pop order.
        #[test]
        fn prop_merge_order_is_canonical(
            outboxes in proptest::collection::vec(
                proptest::collection::vec((0u64..50, 0u64..50), 0..12), 1..6),
            perm_seed in 0u64..10_000,
        ) {
            let canonical: Vec<(usize, Vec<CrossPacket>)> = outboxes
                .iter()
                .enumerate()
                .map(|(shard, v)| {
                    (shard, v.iter().enumerate().map(|(i, &(at, sched))| {
                        // A round delivers at ≥ sched; clamp to keep the
                        // model within the engine's invariant.
                        cross(at.max(sched), sched, (shard * 100 + i) as u32)
                    }).collect())
                })
                .collect();
            // Adversarial interleaving: permute the reply arrival order.
            let mut permuted = canonical.clone();
            let mut state = perm_seed;
            for i in (1..permuted.len()).rev() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                permuted.swap(i, (state as usize) % (i + 1));
            }
            let a = super::merge_outboxes(canonical);
            let b = super::merge_outboxes(permuted);
            let key = |c: &CrossPacket| (c.at, c.sched, c.packet.flow);
            proptest::prop_assert_eq!(
                a.iter().map(key).collect::<Vec<_>>(),
                b.iter().map(key).collect::<Vec<_>>()
            );
            // Injecting the canonical sequence yields one canonical event
            // order: keys are non-decreasing in (at, sched, injection seq).
            let mut q = EventQueue::new();
            let mut arena = PacketArena::new();
            for c in &a {
                let handle = arena.insert(c.packet);
                q.inject(c.at, c.sched, Event::Deliver { node: c.node, packet: handle });
            }
            let mut popped = Vec::new();
            while let Some((at, _)) = q.pop() {
                popped.push(at);
            }
            let mut sorted = popped.clone();
            sorted.sort();
            proptest::prop_assert_eq!(popped, sorted);
        }
    }
}
