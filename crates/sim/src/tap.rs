//! Per-link detector tap: the engine-side feed for streaming detectors.
//!
//! Online detectors (`pdos-detect`'s `StreamingCusum` and friends) score
//! traffic bin by bin as it flows. The engine side of that pipeline is
//! deliberately tiny: a [`DetectorTap`] bins the bytes *offered* to every
//! link — the same instrument as a [`RateTrace`] with
//! [`TraceFilter::All`](crate::trace::TraceFilter::All), recorded at the
//! same hook site (before the queue's accept/drop decision) — without
//! any detector logic. Keeping `pdos-sim` detector-free preserves the
//! dependency direction (`pdos-detect` builds on analysis, not on the
//! simulator); consumers pull [`DetectorTap::bins`] off closed runs or
//! snapshots and push them through the streaming detectors downstream.
//!
//! Like the checkers and metrics, the tap follows the
//! zero-overhead-when-disabled pattern: the engine holds an
//! `Option<Box<DetectorTap>>` that costs one branch per forwarded packet
//! while `None`, and an enabled tap is read-only with respect to the
//! simulation — taps never change physics or golden digests.

use crate::link::{Link, LinkId};
use crate::packet::Packet;
use crate::time::{SimDuration, SimTime};
use crate::trace::{RateTrace, TraceFilter};

/// Per-link offered-bytes binning behind `Simulator::enable_tap`.
#[derive(Clone)]
pub struct DetectorTap {
    bin: SimDuration,
    /// One trace per link, indexed by `LinkId::index()`.
    per_link: Vec<RateTrace>,
}

impl DetectorTap {
    /// Builds one [`TraceFilter::All`] binner per link.
    pub(crate) fn new(links: &[Link], bin: SimDuration) -> Self {
        DetectorTap {
            bin,
            per_link: links
                .iter()
                .map(|l| RateTrace::new(l.id(), TraceFilter::All, bin))
                .collect(),
        }
    }

    /// Records a packet offered to `link` (engine hook; same site as the
    /// user-registered traces, before the queue decides accept/drop).
    #[inline]
    pub(crate) fn record(&mut self, link: LinkId, now: SimTime, packet: &Packet) {
        self.per_link[link.index()].record(now, packet);
    }

    /// The tap's bin width.
    pub fn bin_width(&self) -> SimDuration {
        self.bin
    }

    /// Offered bytes per bin on `link`, in time order.
    pub fn bins(&self, link: LinkId) -> &[u64] {
        self.per_link[link.index()].bytes_per_bin()
    }
}

impl std::fmt::Debug for DetectorTap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DetectorTap")
            .field("bin", &self.bin)
            .field("links", &self.per_link.len())
            .finish()
    }
}
