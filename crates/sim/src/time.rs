//! Simulation clock types.
//!
//! The simulator measures time in **integer nanoseconds** so that event
//! ordering is exact and runs are bit-for-bit reproducible: floating-point
//! accumulation error can reorder events between platforms, which would make
//! the experiment harness nondeterministic.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulation clock, in nanoseconds since the
/// start of the run.
///
/// # Examples
///
/// ```
/// use pdos_sim::time::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(50);
/// assert_eq!(t.as_secs_f64(), 0.050);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use pdos_sim::time::SimDuration;
///
/// let pulse = SimDuration::from_millis(50);
/// let space = SimDuration::from_millis(1950);
/// assert_eq!((pulse + space).as_secs_f64(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// The farthest representable instant; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant `secs` seconds after the start of the run.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimTime must be a finite non-negative number of seconds, got {secs}"
        );
        SimTime((secs * 1e9).round() as u64)
    }

    /// Creates an instant `ms` milliseconds after the start of the run.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates an instant `s` whole seconds after the start of the run.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanoseconds since the start of the run.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the start of the run, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked duration since `earlier`; `None` when `earlier > self`.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimDuration must be a finite non-negative number of seconds, got {secs}"
        );
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds (for reporting and rate arithmetic).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Whether this is the zero-length duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the duration by an integer factor, saturating at the
    /// representable maximum.
    pub const fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// Scales the duration by a float factor (used by RTO backoff).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "duration scale factor must be finite and non-negative, got {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.checked_since(rhs)
            .expect("SimTime subtraction underflow: rhs is later than self")
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        self.saturating_mul(rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div for SimDuration {
    /// Ratio of two durations (e.g. `T_AIMD / RTT` in the paper's model).
    type Output = f64;
    fn div(self, rhs: SimDuration) -> f64 {
        assert!(!rhs.is_zero(), "division by zero-length SimDuration");
        self.0 as f64 / rhs.0 as f64
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_roundtrips_through_float_seconds() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert_eq!(t.as_secs_f64(), 1.5);
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_millis(50);
        let b = SimDuration::from_millis(1950);
        assert_eq!((a + b).as_secs_f64(), 2.0);
        assert_eq!((b - a).as_millis_for_test(), 1900);
        assert_eq!((a * 3).as_millis_for_test(), 150);
        assert_eq!((b / a), 39.0);
    }

    impl SimDuration {
        fn as_millis_for_test(self) -> u64 {
            self.0 / 1_000_000
        }
    }

    #[test]
    fn time_plus_duration() {
        let t = SimTime::from_millis(100) + SimDuration::from_millis(400);
        assert_eq!(t, SimTime::from_millis(500));
        assert_eq!(t - SimTime::from_millis(100), SimDuration::from_millis(400));
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let early = SimTime::from_millis(10);
        let late = SimTime::from_millis(20);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_millis(10));
    }

    #[test]
    fn checked_since_detects_ordering() {
        let early = SimTime::from_millis(10);
        let late = SimTime::from_millis(20);
        assert!(early.checked_since(late).is_none());
        assert_eq!(
            late.checked_since(early),
            Some(SimDuration::from_millis(10))
        );
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn duration_sub_underflow_panics() {
        let _ = SimDuration::from_millis(1) - SimDuration::from_millis(2);
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn negative_seconds_rejected() {
        let _ = SimTime::from_secs_f64(-1.0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(SimDuration::from_millis(50).to_string(), "50.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimDuration::from_nanos(10).to_string(), "10ns");
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_secs(1).mul_f64(1.5);
        assert_eq!(d, SimDuration::from_millis(1500));
    }
}
