//! Declarative topology construction.

use crate::engine::Simulator;
use crate::link::{Impairments, Link, LinkId};
use crate::node::{Node, NodeId, NodeKind};
use crate::queue::QueueSpec;
use crate::routing::RoutingTable;
use crate::time::SimDuration;
use crate::units::BitsPerSec;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// A problem found while building a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A link referenced a node id that was never added.
    UnknownNode {
        /// The offending node id.
        node: NodeId,
    },
    /// A link connects a node to itself.
    SelfLoop {
        /// The node with the self-loop.
        node: NodeId,
    },
    /// The topology has no nodes.
    Empty,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnknownNode { node } => {
                write!(f, "link references unknown node {node}")
            }
            BuildError::SelfLoop { node } => write!(f, "self-loop at {node}"),
            BuildError::Empty => write!(f, "topology has no nodes"),
        }
    }
}

impl Error for BuildError {}

#[derive(Debug, Clone)]
struct LinkSpec {
    src: NodeId,
    dst: NodeId,
    bandwidth: BitsPerSec,
    delay: SimDuration,
    queue: Arc<QueueSpec>,
    impairments: Impairments,
}

/// Incrementally describes a topology, then builds a [`Simulator`].
///
/// # Examples
///
/// A minimal dumbbell:
///
/// ```
/// use pdos_sim::topology::TopologyBuilder;
/// use pdos_sim::queue::QueueSpec;
/// use pdos_sim::units::BitsPerSec;
/// use pdos_sim::time::SimDuration;
///
/// let mut t = TopologyBuilder::with_seed(7);
/// let s = t.add_router("S");
/// let r = t.add_router("R");
/// let src = t.add_host("sender");
/// let dst = t.add_host("receiver");
/// // Wrapping the spec in an `Arc` shares it across links without
/// // cloning; passing a bare `QueueSpec` works too.
/// let q = std::sync::Arc::new(QueueSpec::DropTail { capacity: 64 });
/// t.add_duplex_link(src, s, BitsPerSec::from_mbps(50.0), SimDuration::from_millis(1), q.clone());
/// t.add_duplex_link(s, r, BitsPerSec::from_mbps(15.0), SimDuration::from_millis(10), q.clone());
/// t.add_duplex_link(r, dst, BitsPerSec::from_mbps(50.0), SimDuration::from_millis(1), q);
/// let sim = t.build()?;
/// assert_eq!(sim.nodes().len(), 4);
/// assert_eq!(sim.links().len(), 6);
/// # Ok::<(), pdos_sim::topology::BuildError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct TopologyBuilder {
    nodes: Vec<(NodeKind, String)>,
    links: Vec<LinkSpec>,
    seed: u64,
}

impl TopologyBuilder {
    /// Creates an empty builder with seed 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty builder whose queue disciplines derive their RNG
    /// streams from `seed`.
    pub fn with_seed(seed: u64) -> Self {
        TopologyBuilder {
            seed,
            ..Self::default()
        }
    }

    /// Adds an endpoint node.
    pub fn add_host(&mut self, label: impl Into<String>) -> NodeId {
        self.add_node(NodeKind::Host, label)
    }

    /// Adds a forwarding node.
    pub fn add_router(&mut self, label: impl Into<String>) -> NodeId {
        self.add_node(NodeKind::Router, label)
    }

    fn add_node(&mut self, kind: NodeKind, label: impl Into<String>) -> NodeId {
        let id = NodeId::from_u32(self.nodes.len() as u32);
        self.nodes.push((kind, label.into()));
        id
    }

    /// Adds a simplex link `src -> dst`.
    ///
    /// `queue` accepts either a bare [`QueueSpec`] or an
    /// `Arc<QueueSpec>`; pass a shared `Arc` to describe many links
    /// without cloning the spec per link.
    pub fn add_link(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bandwidth: BitsPerSec,
        delay: SimDuration,
        queue: impl Into<Arc<QueueSpec>>,
    ) -> LinkId {
        let id = LinkId::from_u32(self.links.len() as u32);
        self.links.push(LinkSpec {
            src,
            dst,
            bandwidth,
            delay,
            queue: queue.into(),
            impairments: Impairments::NONE,
        });
        id
    }

    /// Installs Dummynet-style impairments (random loss, delay jitter) on
    /// a previously added link.
    ///
    /// # Panics
    ///
    /// Panics if `link` was not returned by this builder or the
    /// impairments are invalid.
    pub fn set_impairments(&mut self, link: LinkId, impairments: Impairments) {
        if let Err(e) = impairments.validate() {
            panic!("invalid link impairments: {e}");
        }
        self.links[link.index()].impairments = impairments;
    }

    /// Adds a pair of simplex links `a -> b` and `b -> a` with identical
    /// parameters. Returns `(forward, reverse)`. The spec is shared, not
    /// cloned, between the two directions.
    pub fn add_duplex_link(
        &mut self,
        a: NodeId,
        b: NodeId,
        bandwidth: BitsPerSec,
        delay: SimDuration,
        queue: impl Into<Arc<QueueSpec>>,
    ) -> (LinkId, LinkId) {
        let queue = queue.into();
        let fwd = self.add_link(a, b, bandwidth, delay, Arc::clone(&queue));
        let rev = self.add_link(b, a, bandwidth, delay, queue);
        (fwd, rev)
    }

    /// Number of nodes added so far.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of simplex links added so far.
    pub fn n_links(&self) -> usize {
        self.links.len()
    }

    /// Validates the description and builds the simulator.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] when the description is inconsistent (unknown
    /// node ids, self-loops, no nodes at all).
    pub fn build(&self) -> Result<Simulator, BuildError> {
        if self.nodes.is_empty() {
            return Err(BuildError::Empty);
        }
        let n = self.nodes.len();
        for spec in &self.links {
            for endpoint in [spec.src, spec.dst] {
                if endpoint.index() >= n {
                    return Err(BuildError::UnknownNode { node: endpoint });
                }
            }
            if spec.src == spec.dst {
                return Err(BuildError::SelfLoop { node: spec.src });
            }
        }

        let nodes: Vec<Node> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, (kind, label))| Node::new(NodeId::from_u32(i as u32), *kind, label.clone()))
            .collect();

        let links: Vec<Link> = self
            .links
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let id = LinkId::from_u32(i as u32);
                // Derive a distinct, stable RNG stream per link from the
                // topology seed.
                let link_seed = self
                    .seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(i as u64 + 1);
                let mut link = Link::new(
                    id,
                    spec.src,
                    spec.dst,
                    spec.bandwidth,
                    spec.delay,
                    spec.queue.build(spec.bandwidth, link_seed),
                );
                if !spec.impairments.is_none() {
                    link.set_impairments(spec.impairments, link_seed ^ 0xDAD0);
                }
                link
            })
            .collect();

        let edge_list: Vec<(LinkId, NodeId, NodeId)> =
            links.iter().map(|l| (l.id(), l.src(), l.dst())).collect();
        let routing = RoutingTable::compute(n, &edge_list);

        Ok(Simulator::from_parts(nodes, links, routing))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q() -> QueueSpec {
        QueueSpec::DropTail { capacity: 10 }
    }

    #[test]
    fn empty_topology_rejected() {
        assert_eq!(
            TopologyBuilder::new().build().unwrap_err(),
            BuildError::Empty
        );
    }

    #[test]
    fn self_loop_rejected() {
        let mut t = TopologyBuilder::new();
        let a = t.add_host("a");
        t.add_link(
            a,
            a,
            BitsPerSec::from_mbps(1.0),
            SimDuration::from_millis(1),
            q(),
        );
        assert_eq!(t.build().unwrap_err(), BuildError::SelfLoop { node: a });
    }

    #[test]
    fn unknown_node_rejected() {
        let mut t = TopologyBuilder::new();
        let a = t.add_host("a");
        let ghost = NodeId::from_u32(99);
        t.add_link(
            a,
            ghost,
            BitsPerSec::from_mbps(1.0),
            SimDuration::from_millis(1),
            q(),
        );
        assert_eq!(
            t.build().unwrap_err(),
            BuildError::UnknownNode { node: ghost }
        );
    }

    #[test]
    fn build_produces_working_routing() {
        let mut t = TopologyBuilder::new();
        let a = t.add_host("a");
        let r = t.add_router("r");
        let b = t.add_host("b");
        t.add_duplex_link(
            a,
            r,
            BitsPerSec::from_mbps(1.0),
            SimDuration::from_millis(1),
            q(),
        );
        t.add_duplex_link(
            r,
            b,
            BitsPerSec::from_mbps(1.0),
            SimDuration::from_millis(1),
            q(),
        );
        let sim = t.build().unwrap();
        assert!(sim.routing().reachable(a, b));
        assert!(sim.routing().reachable(b, a));
        assert_eq!(sim.nodes()[1].label(), "r");
        assert_eq!(t.n_nodes(), 3);
        assert_eq!(t.n_links(), 4);
    }

    #[test]
    fn thousand_links_share_one_spec_without_cloning() {
        // Regression: link specs used to be cloned per link (and per
        // duplex direction). With `Arc` sharing, a 1k-link topology holds
        // exactly one spec: 1 owner here + 1 per link, and building it
        // never clones the spec either.
        let mut t = TopologyBuilder::new();
        let a = t.add_router("a");
        let b = t.add_router("b");
        let shared = Arc::new(QueueSpec::DropTail { capacity: 50 });
        for i in 0..1_000 {
            let (src, dst) = if i % 2 == 0 { (a, b) } else { (b, a) };
            t.add_link(
                src,
                dst,
                BitsPerSec::from_mbps(10.0),
                SimDuration::from_millis(1),
                Arc::clone(&shared),
            );
        }
        assert_eq!(t.n_links(), 1_000);
        assert_eq!(Arc::strong_count(&shared), 1_001);
        let sim = t.build().unwrap();
        assert_eq!(sim.links().len(), 1_000);
        // build() borrowed the specs; no hidden clones survived it.
        assert_eq!(Arc::strong_count(&shared), 1_001);
    }

    #[test]
    fn error_messages_are_informative() {
        assert_eq!(BuildError::Empty.to_string(), "topology has no nodes");
        assert!(BuildError::SelfLoop {
            node: NodeId::from_u32(2)
        }
        .to_string()
        .contains("n2"));
        assert!(BuildError::UnknownNode {
            node: NodeId::from_u32(5)
        }
        .to_string()
        .contains("n5"));
    }
}
