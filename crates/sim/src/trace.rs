//! Measurement instruments: binned rate traces on link ingress.
//!
//! The paper's Fig. 2/3 observe the *incoming traffic at the bottleneck
//! router*; [`RateTrace`] reproduces that instrument — every packet offered
//! to a traced link adds its bytes to a fixed-width time bin.

use crate::link::LinkId;
use crate::packet::{Packet, PacketKind};
use crate::time::{SimDuration, SimTime};
use std::fmt;

/// Identifies a trace registered with the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(u32);

impl TraceId {
    /// Creates a trace id from a raw index.
    pub const fn from_u32(v: u32) -> Self {
        TraceId(v)
    }

    /// The raw index as `usize`.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// Which packets a trace counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFilter {
    /// Count every packet (the paper's "incoming traffic": legitimate TCP
    /// plus attack pulses).
    All,
    /// Count only TCP data and ACK packets.
    TcpOnly,
    /// Count only attack packets.
    AttackOnly,
}

impl TraceFilter {
    /// Whether the filter admits `kind`.
    pub fn admits(self, kind: PacketKind) -> bool {
        match self {
            TraceFilter::All => true,
            TraceFilter::TcpOnly => kind.is_data() || kind.is_ack(),
            TraceFilter::AttackOnly => kind.is_attack(),
        }
    }
}

/// A fixed-bin byte counter over simulation time.
#[derive(Debug, Clone)]
pub struct RateTrace {
    link: LinkId,
    filter: TraceFilter,
    bin: SimDuration,
    bytes: Vec<u64>,
    /// Nanosecond range `[start, end)` of the most recently hit bin.
    /// Records arrive in near-monotone time, so almost every record lands
    /// in the cached bin and skips the index division.
    cur_range: (u64, u64),
    cur_idx: usize,
}

impl RateTrace {
    /// Creates a trace for `link` with bin width `bin`.
    ///
    /// # Panics
    ///
    /// Panics if `bin` is zero.
    pub fn new(link: LinkId, filter: TraceFilter, bin: SimDuration) -> Self {
        assert!(!bin.is_zero(), "trace bin width must be positive");
        RateTrace {
            link,
            filter,
            bin,
            bytes: Vec::new(),
            cur_range: (0, bin.as_nanos()),
            cur_idx: 0,
        }
    }

    /// The traced link.
    pub fn link(&self) -> LinkId {
        self.link
    }

    /// The trace's filter.
    pub fn filter(&self) -> TraceFilter {
        self.filter
    }

    /// Bin width.
    pub fn bin_width(&self) -> SimDuration {
        self.bin
    }

    /// Records `packet` arriving at `now` (engine hook).
    pub fn record(&mut self, now: SimTime, packet: &Packet) {
        if !self.filter.admits(packet.kind) {
            return;
        }
        let t = now.as_nanos();
        let idx = if t >= self.cur_range.0 && t < self.cur_range.1 {
            self.cur_idx
        } else {
            let width = self.bin.as_nanos();
            let idx = (t / width) as usize;
            let start = idx as u64 * width;
            self.cur_range = (start, start.saturating_add(width));
            self.cur_idx = idx;
            idx
        };
        if idx >= self.bytes.len() {
            self.bytes.resize(idx + 1, 0);
        }
        self.bytes[idx] += packet.size.as_u64();
    }

    /// Bytes per bin, in time order.
    pub fn bytes_per_bin(&self) -> &[u64] {
        &self.bytes
    }

    /// The observed series as rates in bits per second (one value per bin).
    pub fn series_bps(&self) -> Vec<f64> {
        let secs = self.bin.as_secs_f64();
        self.bytes.iter().map(|&b| b as f64 * 8.0 / secs).collect()
    }

    /// Total bytes recorded.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Number of bins written so far (trailing empty bins are not
    /// materialized until a later packet forces them).
    pub fn n_bins(&self) -> usize {
        self.bytes.len()
    }
}

impl fmt::Display for RateTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace({}, {:?}, bin={}, bins={})",
            self.link,
            self.filter,
            self.bin,
            self.bytes.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;
    use crate::packet::FlowId;
    use crate::units::Bytes;

    fn pkt(kind: PacketKind, size: u64) -> Packet {
        Packet::new(
            FlowId::from_u32(0),
            NodeId::from_u32(0),
            NodeId::from_u32(1),
            Bytes::from_u64(size),
            kind,
        )
    }

    #[test]
    fn bins_accumulate_bytes() {
        let mut t = RateTrace::new(
            LinkId::from_u32(0),
            TraceFilter::All,
            SimDuration::from_millis(50),
        );
        t.record(SimTime::from_millis(10), &pkt(PacketKind::Attack, 1000));
        t.record(SimTime::from_millis(40), &pkt(PacketKind::Attack, 500));
        t.record(SimTime::from_millis(60), &pkt(PacketKind::Attack, 200));
        assert_eq!(t.bytes_per_bin(), &[1500, 200]);
        assert_eq!(t.total_bytes(), 1700);
        assert_eq!(t.n_bins(), 2);
    }

    #[test]
    fn series_converts_to_bps() {
        let mut t = RateTrace::new(
            LinkId::from_u32(0),
            TraceFilter::All,
            SimDuration::from_millis(100),
        );
        t.record(SimTime::ZERO, &pkt(PacketKind::Background, 12_500)); // 100 kbit in 0.1 s = 1 Mbps
        assert_eq!(t.series_bps(), vec![1e6]);
    }

    #[test]
    fn filters_select_traffic_classes() {
        assert!(TraceFilter::All.admits(PacketKind::Attack));
        assert!(TraceFilter::TcpOnly.admits(PacketKind::Data {
            seq: 0,
            retx: false
        }));
        assert!(TraceFilter::TcpOnly.admits(PacketKind::Ack { cum_seq: 0 }));
        assert!(!TraceFilter::TcpOnly.admits(PacketKind::Attack));
        assert!(!TraceFilter::TcpOnly.admits(PacketKind::Background));
        assert!(TraceFilter::AttackOnly.admits(PacketKind::Attack));
        assert!(!TraceFilter::AttackOnly.admits(PacketKind::Ack { cum_seq: 0 }));

        let mut t = RateTrace::new(
            LinkId::from_u32(0),
            TraceFilter::AttackOnly,
            SimDuration::from_millis(10),
        );
        t.record(SimTime::ZERO, &pkt(PacketKind::Ack { cum_seq: 1 }, 40));
        assert_eq!(t.total_bytes(), 0);
        t.record(SimTime::ZERO, &pkt(PacketKind::Attack, 40));
        assert_eq!(t.total_bytes(), 40);
    }

    #[test]
    fn display_mentions_link() {
        let t = RateTrace::new(
            LinkId::from_u32(3),
            TraceFilter::All,
            SimDuration::from_millis(50),
        );
        assert!(t.to_string().contains("link3"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bin_rejected() {
        RateTrace::new(LinkId::from_u32(0), TraceFilter::All, SimDuration::ZERO);
    }
}
