//! Physical units used throughout the simulator: data sizes and bit rates.

use crate::time::SimDuration;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// A data size in bytes.
///
/// # Examples
///
/// ```
/// use pdos_sim::units::Bytes;
///
/// let mss = Bytes::from_u64(1460);
/// assert_eq!(mss.as_bits(), 11_680);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes(u64);

/// A transmission or sending rate in bits per second.
///
/// # Examples
///
/// ```
/// use pdos_sim::units::{Bytes, BitsPerSec};
///
/// let bottleneck = BitsPerSec::from_mbps(15.0);
/// let pkt = Bytes::from_u64(1500);
/// // 1500 B at 15 Mbps serializes in 0.8 ms.
/// assert_eq!(bottleneck.tx_time(pkt).as_nanos(), 800_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct BitsPerSec(f64);

impl Bytes {
    /// The zero size.
    pub const ZERO: Bytes = Bytes(0);

    /// Creates a size from a byte count.
    pub const fn from_u64(b: u64) -> Self {
        Bytes(b)
    }

    /// Byte count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Bit count (`8 x` bytes).
    pub const fn as_bits(self) -> u64 {
        self.0 * 8
    }

    /// Byte count as a float, for rate arithmetic.
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Saturating addition.
    pub const fn saturating_add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_add(rhs.0))
    }
}

impl BitsPerSec {
    /// The zero rate (a disabled source).
    pub const ZERO: BitsPerSec = BitsPerSec(0.0);

    /// Creates a rate from bits per second.
    ///
    /// # Panics
    ///
    /// Panics if `bps` is negative or not finite.
    pub fn from_bps(bps: f64) -> Self {
        assert!(
            bps.is_finite() && bps >= 0.0,
            "rate must be finite and non-negative, got {bps}"
        );
        BitsPerSec(bps)
    }

    /// Creates a rate from megabits per second (the unit the paper uses).
    pub fn from_mbps(mbps: f64) -> Self {
        Self::from_bps(mbps * 1e6)
    }

    /// Creates a rate from kilobits per second.
    pub fn from_kbps(kbps: f64) -> Self {
        Self::from_bps(kbps * 1e3)
    }

    /// Bits per second.
    pub const fn as_bps(self) -> f64 {
        self.0
    }

    /// Megabits per second.
    pub fn as_mbps(self) -> f64 {
        self.0 / 1e6
    }

    /// Whether the rate is exactly zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// The time needed to serialize `size` at this rate.
    ///
    /// # Panics
    ///
    /// Panics if the rate is zero.
    pub fn tx_time(self, size: Bytes) -> SimDuration {
        assert!(self.0 > 0.0, "cannot serialize over a zero-rate link");
        SimDuration::from_secs_f64(size.as_bits() as f64 / self.0)
    }

    /// The number of whole bytes transferred in `dur` at this rate.
    pub fn bytes_in(self, dur: SimDuration) -> Bytes {
        Bytes((self.0 * dur.as_secs_f64() / 8.0).floor() as u64)
    }
}

impl Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.checked_add(rhs.0).expect("Bytes addition overflow"))
    }
}

impl AddAssign for Bytes {
    fn add_assign(&mut self, rhs: Bytes) {
        *self = *self + rhs;
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    fn sub(self, rhs: Bytes) -> Bytes {
        Bytes(
            self.0
                .checked_sub(rhs.0)
                .expect("Bytes subtraction underflow"),
        )
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        iter.fold(Bytes::ZERO, |acc, b| acc + b)
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.2}MB", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.2}kB", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

impl fmt::Display for BitsPerSec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e6 {
            write!(f, "{:.2}Mbps", self.0 / 1e6)
        } else if self.0 >= 1e3 {
            write!(f, "{:.2}kbps", self.0 / 1e3)
        } else {
            write!(f, "{:.0}bps", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_time_of_mtu_at_bottleneck() {
        // The paper's bottleneck: 15 Mbps. One 1500 B packet = 0.8 ms.
        let r = BitsPerSec::from_mbps(15.0);
        assert_eq!(r.tx_time(Bytes::from_u64(1500)).as_nanos(), 800_000);
    }

    #[test]
    fn bytes_in_duration() {
        let r = BitsPerSec::from_mbps(100.0);
        // 100 Mbps for 50 ms = 625 000 bytes, the Fig. 3(a) pulse volume.
        let got = r.bytes_in(SimDuration::from_millis(50));
        assert_eq!(got.as_u64(), 625_000);
    }

    #[test]
    fn byte_arithmetic() {
        let a = Bytes::from_u64(1000);
        let b = Bytes::from_u64(500);
        assert_eq!((a + b).as_u64(), 1500);
        assert_eq!((a - b).as_u64(), 500);
        let total: Bytes = [a, b, b].into_iter().sum();
        assert_eq!(total.as_u64(), 2000);
    }

    #[test]
    #[should_panic(expected = "zero-rate")]
    fn zero_rate_tx_panics() {
        BitsPerSec::ZERO.tx_time(Bytes::from_u64(1));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rate_rejected() {
        let _ = BitsPerSec::from_bps(-1.0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Bytes::from_u64(1500).to_string(), "1.50kB");
        assert_eq!(BitsPerSec::from_mbps(15.0).to_string(), "15.00Mbps");
        assert_eq!(BitsPerSec::from_kbps(64.0).to_string(), "64.00kbps");
    }
}
