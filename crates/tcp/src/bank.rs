//! Memory-flat TCP flow banks: struct-of-arrays storage for 10⁵–10⁶
//! concurrent flows behind the ordinary [`Agent`] interface.
//!
//! [`sender::TcpSender`](crate::sender::TcpSender) is the right tool for
//! the paper's dozens-of-victims scenarios: one boxed state machine per
//! flow, full NewReno recovery, pluggable congestion control, per-flow
//! RTT estimation. At dataset scale (the million-flow aggregates of the
//! sharded engine's `million-flow-smoke` macro) that layout drowns in
//! pointer-chasing: every flow is its own heap allocation, its own
//! vtable, its own cold cache line.
//!
//! A [`SenderBank`] instead serves a dense *range* of flows from one
//! agent: all per-flow state lives in parallel `Vec`s (struct-of-arrays),
//! ~26 bytes per sender-side flow, scanned and indexed without
//! indirection. The engine sees a single agent per host; the many flows
//! are multiplexed through the ordinary `(node, flow)` bindings, and all
//! of their retransmission deadlines fold into one bank-level
//! [`RtoWheel`] behind one engine timer per *deadline instant* (not per
//! flow) — per-ACK timer cost is O(1) and a synchronized timeout storm
//! of a million flows is a single engine timer event, no matter how many
//! flows the bank serves. Everything stays
//! deterministic and cloneable, so banks work under checkpoint/fork and
//! the sharded engine's bit-identity contract.
//!
//! The congestion response is deliberately compact — integer AIMD with
//! slow start, go-back-N recovery keyed on the third duplicate ACK, and
//! a fixed retransmission timeout — not the full [`crate::sender`]
//! machinery (the sink keeps no out-of-order buffer, so go-back-N is
//! the honest recovery model at one `u32` of receiver state per flow).
//! Banks exist to load the *engine* (wheels, arena, shards) with
//! realistic closed-loop traffic at scale, not to reproduce Fig. 6.

use crate::rto_wheel::RtoWheel;
use pdos_sim::agent::{Agent, AgentCtx};
use pdos_sim::node::NodeId;
use pdos_sim::packet::{FlowId, Packet, PacketKind};
use pdos_sim::time::{SimDuration, SimTime};
use pdos_sim::units::Bytes;
use std::any::Any;

// A SenderBank's engine timers carry the deadline's nanosecond as the
// token. Deadlines are strictly monotone and armed once each, so every
// live timer has a distinct token — which keeps the engine's per-agent
// timer table duplicate-free (no spill, O(1) per arm and per fire).

/// A bank of greedy AIMD senders for the dense flow range
/// `[first, first + n)`, all sending from one host toward `dst`.
#[derive(Debug, Clone)]
pub struct SenderBank {
    dst: NodeId,
    segment: Bytes,
    cwnd_cap: u32,
    first: u32,
    // Struct-of-arrays per-flow state, indexed by slot = flow - first.
    cwnd: Vec<u32>,
    frac: Vec<u32>,
    ssthresh: Vec<u32>,
    next_seq: Vec<u32>,
    high: Vec<u32>,
    acked: Vec<u32>,
    dup: Vec<u8>,
    // Bank-wide counters.
    segments_sent: u64,
    retransmissions: u64,
    timeouts: u64,
    // All per-flow retransmission deadlines, behind one engine timer
    // per distinct deadline instant.
    wheel: RtoWheel,
    /// Highest deadline an engine timer has been armed for. Deadlines
    /// are monotone, so a rearm needs a new engine timer iff its
    /// deadline differs from this.
    armed_through: Option<SimTime>,
    /// Reused buffer for the slots expired by one timer fire.
    due_scratch: Vec<usize>,
}

impl SenderBank {
    /// A bank of `n` flows `[first, first + n)` sending `segment`-sized
    /// data toward `dst`, with a fixed retransmission timeout `rto` and
    /// a congestion-window cap of `cwnd_cap` segments.
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero or `cwnd_cap` < 2.
    pub fn new(first: FlowId, n: usize, dst: NodeId, segment: Bytes, rto: SimDuration) -> Self {
        Self::with_cwnd_cap(first, n, dst, segment, rto, 8)
    }

    /// Like [`SenderBank::new`] with an explicit congestion-window cap.
    pub fn with_cwnd_cap(
        first: FlowId,
        n: usize,
        dst: NodeId,
        segment: Bytes,
        rto: SimDuration,
        cwnd_cap: u32,
    ) -> Self {
        assert!(n > 0, "a bank needs at least one flow");
        assert!(cwnd_cap >= 2, "cwnd cap below 2 cannot fast-retransmit");
        SenderBank {
            dst,
            segment,
            cwnd_cap,
            first: first.as_u32(),
            cwnd: vec![1; n],
            frac: vec![0; n],
            ssthresh: vec![cwnd_cap; n],
            next_seq: vec![0; n],
            high: vec![0; n],
            acked: vec![0; n],
            dup: vec![0; n],
            segments_sent: 0,
            retransmissions: 0,
            timeouts: 0,
            wheel: RtoWheel::new(rto, n),
            armed_through: None,
            due_scratch: Vec::new(),
        }
    }

    /// Number of flows in the bank.
    pub fn n_flows(&self) -> usize {
        self.cwnd.len()
    }

    /// The dense flow range `[first, first + n)` this bank serves.
    pub fn flow_range(&self) -> std::ops::Range<u32> {
        self.first..self.first + self.cwnd.len() as u32
    }

    /// Total data segments put on the wire (including retransmissions).
    pub fn segments_sent(&self) -> u64 {
        self.segments_sent
    }

    /// Total retransmitted segments (fast retransmit + timeout).
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    /// Total retransmission-timeout firings.
    pub fn timeouts(&self) -> u64 {
        self.timeouts
    }

    /// Total segments cumulatively acknowledged across all flows.
    pub fn total_acked(&self) -> u64 {
        self.acked.iter().map(|&a| u64::from(a)).sum()
    }

    /// Approximate heap footprint of the per-flow arrays, bytes.
    pub fn approx_bytes(&self) -> usize {
        self.n_flows() * (6 * std::mem::size_of::<u32>() + 1)
    }

    /// One slot's full congestion state
    /// `(cwnd, frac, ssthresh, next_seq, high, acked, dup)` — for the
    /// layout-equivalence tests, which assert the bank byte-matches a
    /// boxed per-flow reference.
    #[doc(hidden)]
    pub fn slot_state(&self, slot: usize) -> (u32, u32, u32, u32, u32, u32, u8) {
        (
            self.cwnd[slot],
            self.frac[slot],
            self.ssthresh[slot],
            self.next_seq[slot],
            self.high[slot],
            self.acked[slot],
            self.dup[slot],
        )
    }

    fn slot_of(&self, flow: FlowId) -> Option<usize> {
        let slot = flow.as_u32().checked_sub(self.first)? as usize;
        (slot < self.cwnd.len()).then_some(slot)
    }

    fn send_segment(&mut self, slot: usize, seq: u32, ctx: &mut AgentCtx<'_>) {
        let retx = seq < self.high[slot];
        if retx {
            self.retransmissions += 1;
        } else {
            self.high[slot] = seq + 1;
        }
        let flow = FlowId::from_u32(self.first + slot as u32);
        ctx.send(Packet::new(
            flow,
            ctx.node(),
            self.dst,
            self.segment,
            PacketKind::Data {
                seq: u64::from(seq),
                retx,
            },
        ));
        self.segments_sent += 1;
    }

    /// Fills the window: sends while fewer than `cwnd` segments are
    /// outstanding. Greedy — there is always more data.
    fn fill_window(&mut self, slot: usize, ctx: &mut AgentCtx<'_>) {
        while self.next_seq[slot] - self.acked[slot] < self.cwnd[slot] {
            let seq = self.next_seq[slot];
            self.next_seq[slot] += 1;
            self.send_segment(slot, seq, ctx);
        }
    }

    /// Go-back-N recovery: the sink keeps no out-of-order buffer, so a
    /// loss invalidates everything in flight behind it. Rewind the send
    /// pointer to the cumulative ACK and let `fill_window` resend.
    fn go_back_n(&mut self, slot: usize, ctx: &mut AgentCtx<'_>) {
        self.next_seq[slot] = self.acked[slot];
        self.dup[slot] = 0;
        self.fill_window(slot, ctx);
        self.rearm_rto(slot, ctx);
    }

    /// (Re-)arms `slot`'s retransmission deadline in the bank wheel.
    ///
    /// No engine timer is cancelled, and none is created per flow: the
    /// wheel's lazy invalidation absorbs the churn, and one engine timer
    /// is armed per *distinct deadline instant* — at the moment that
    /// deadline first appears, so its event key `(deadline, now, seq)`
    /// is byte-identical to the per-flow timer a boxed agent would have
    /// armed right here. That keeps same-instant event ordering — and
    /// therefore the whole packet trace — exactly equal to the retired
    /// per-flow-timer layout (see `tests/bank_equivalence.rs`), while
    /// every flow that re-arms at the same instant shares the one timer.
    /// A timer whose whole bucket is re-armed away fires as a no-op.
    fn rearm_rto(&mut self, slot: usize, ctx: &mut AgentCtx<'_>) {
        let now = ctx.now();
        self.wheel.rearm(slot, now);
        let deadline = now + self.wheel.rto();
        if self.armed_through != Some(deadline) {
            ctx.timer_at(deadline, deadline.as_nanos());
            self.armed_through = Some(deadline);
        }
    }

    /// Integer AIMD growth: double per RTT in slow start (+1 per ACK),
    /// +1 segment per window's worth of ACKs afterwards.
    fn grow(&mut self, slot: usize) {
        if self.cwnd[slot] >= self.cwnd_cap {
            return;
        }
        if self.cwnd[slot] < self.ssthresh[slot] {
            self.cwnd[slot] += 1;
        } else {
            self.frac[slot] += 1;
            if self.frac[slot] >= self.cwnd[slot] {
                self.frac[slot] = 0;
                self.cwnd[slot] += 1;
            }
        }
    }

    fn halve(&mut self, slot: usize) {
        self.ssthresh[slot] = (self.cwnd[slot] / 2).max(2);
        self.frac[slot] = 0;
    }
}

impl Agent for SenderBank {
    fn start(&mut self, ctx: &mut AgentCtx<'_>) {
        for slot in 0..self.n_flows() {
            self.fill_window(slot, ctx);
            self.rearm_rto(slot, ctx);
        }
    }

    fn on_packet(&mut self, packet: Packet, ctx: &mut AgentCtx<'_>) {
        let PacketKind::Ack { cum_seq } = packet.kind else {
            return;
        };
        let Some(slot) = self.slot_of(packet.flow) else {
            return;
        };
        let cum = cum_seq.min(u64::from(u32::MAX)) as u32;
        if cum > self.acked[slot] {
            self.acked[slot] = cum.min(self.next_seq[slot]);
            self.dup[slot] = 0;
            self.grow(slot);
            self.fill_window(slot, ctx);
            self.rearm_rto(slot, ctx);
        } else if self.next_seq[slot] > self.acked[slot] {
            // Duplicate ACK with data outstanding: on the classic third
            // duplicate, halve the window and go-back-N from the hole.
            self.dup[slot] = self.dup[slot].saturating_add(1);
            if self.dup[slot] == 3 {
                self.halve(slot);
                self.cwnd[slot] = self.ssthresh[slot];
                self.go_back_n(slot, ctx);
            }
        }
    }

    fn on_timer(&mut self, _token: u64, ctx: &mut AgentCtx<'_>) {
        // Every timer the bank arms is a wheel deadline (the token is
        // the deadline itself), so any fire means: expire what is due.
        // Expire the whole due bucket, then handle each slot in fire
        // order — identical order and times to the retired per-flow
        // engine timers (see the rto_wheel proptest battery). The fire
        // may be spurious (every due entry re-armed since): the handler
        // loop is empty then and the event is a no-op — future deadlines
        // already armed their own timers when they were created.
        let mut due = std::mem::take(&mut self.due_scratch);
        due.clear();
        self.wheel.expire(ctx.now(), |slot| due.push(slot));
        for &slot in &due {
            if self.next_seq[slot] > self.acked[slot] {
                // Outstanding data lost: collapse to one segment and
                // resend from the first unacknowledged one.
                self.timeouts += 1;
                self.halve(slot);
                self.cwnd[slot] = 1;
                self.go_back_n(slot, ctx);
            } else {
                self.rearm_rto(slot, ctx);
            }
        }
        self.due_scratch = due;
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn clone_box(&self) -> Option<Box<dyn Agent>> {
        Some(Box::new(self.clone()))
    }
}

/// The receiving half of a [`SenderBank`]: cumulative ACKs for a dense
/// flow range, one `u32` of state per flow.
#[derive(Debug, Clone)]
pub struct SinkBank {
    segment: Bytes,
    first: u32,
    /// Next in-order segment expected, per slot.
    next_expected: Vec<u32>,
    acks_sent: u64,
}

impl SinkBank {
    /// A sink bank for the `n` flows `[first, first + n)` whose data
    /// segments are `segment` bytes on the wire.
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero.
    pub fn new(first: FlowId, n: usize, segment: Bytes) -> Self {
        assert!(n > 0, "a bank needs at least one flow");
        SinkBank {
            segment,
            first: first.as_u32(),
            next_expected: vec![0; n],
            acks_sent: 0,
        }
    }

    /// Number of flows in the bank.
    pub fn n_flows(&self) -> usize {
        self.next_expected.len()
    }

    /// Total in-order segments delivered across all flows.
    pub fn delivered_segments(&self) -> u64 {
        self.next_expected.iter().map(|&s| u64::from(s)).sum()
    }

    /// Total in-order payload bytes delivered across all flows.
    pub fn goodput_bytes(&self) -> u64 {
        self.delivered_segments() * self.segment.as_u64()
    }

    /// Total acknowledgments sent.
    pub fn acks_sent(&self) -> u64 {
        self.acks_sent
    }

    /// In-order segments delivered by one flow of the bank, or `None`
    /// when the flow is outside the bank's range.
    pub fn delivered_for(&self, flow: FlowId) -> Option<u64> {
        let slot = flow.as_u32().checked_sub(self.first)? as usize;
        self.next_expected.get(slot).map(|&s| u64::from(s))
    }
}

impl Agent for SinkBank {
    fn start(&mut self, _ctx: &mut AgentCtx<'_>) {}

    fn on_packet(&mut self, packet: Packet, ctx: &mut AgentCtx<'_>) {
        let PacketKind::Data { seq, .. } = packet.kind else {
            return;
        };
        let Some(slot) = packet
            .flow
            .as_u32()
            .checked_sub(self.first)
            .map(|s| s as usize)
            .filter(|&s| s < self.next_expected.len())
        else {
            return;
        };
        if seq == u64::from(self.next_expected[slot]) {
            self.next_expected[slot] += 1;
        }
        // Every arrival is acknowledged (no delayed ACK at bank scale):
        // out-of-order data produces the duplicate ACKs fast retransmit
        // keys on.
        ctx.send(Packet::new(
            packet.flow,
            ctx.node(),
            packet.src,
            Bytes::from_u64(40),
            PacketKind::Ack {
                cum_seq: u64::from(self.next_expected[slot]),
            },
        ));
        self.acks_sent += 1;
    }

    fn on_timer(&mut self, _token: u64, _ctx: &mut AgentCtx<'_>) {}

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn clone_box(&self) -> Option<Box<dyn Agent>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdos_sim::prelude::*;
    use pdos_sim::time::SimTime;

    /// Two hosts, one duplex bottleneck, a bank of flows each way.
    fn bank_pair(n: usize, seed: u64) -> (Simulator, AgentId, AgentId) {
        let mut t = TopologyBuilder::with_seed(seed);
        let a = t.add_host("senders");
        let b = t.add_host("sinks");
        t.add_duplex_link(
            a,
            b,
            BitsPerSec::from_mbps(10.0),
            SimDuration::from_millis(10),
            QueueSpec::DropTail { capacity: 50 },
        );
        let mut sim = t.build().unwrap();
        let first = FlowId::from_u32(0);
        let tx = sim.attach_agent(
            a,
            Box::new(SenderBank::new(
                first,
                n,
                b,
                Bytes::from_u64(1000),
                SimDuration::from_millis(500),
            )),
        );
        let rx = sim.attach_agent(b, Box::new(SinkBank::new(first, n, Bytes::from_u64(1000))));
        for i in 0..n {
            let flow = FlowId::from_u32(i as u32);
            sim.bind_flow(a, flow, tx);
            sim.bind_flow(b, flow, rx);
        }
        (sim, tx, rx)
    }

    #[test]
    fn bank_delivers_on_every_flow() {
        let (mut sim, tx, rx) = bank_pair(50, 3);
        sim.run_until(SimTime::from_secs(10));
        let sink = sim.agent_as::<SinkBank>(rx).unwrap();
        assert_eq!(sink.n_flows(), 50);
        for i in 0..50 {
            let d = sink.delivered_for(FlowId::from_u32(i)).unwrap();
            assert!(d > 0, "flow {i} delivered nothing");
        }
        let sender = sim.agent_as::<SenderBank>(tx).unwrap();
        assert!(sender.segments_sent() >= sink.delivered_segments());
        assert_eq!(sink.delivered_for(FlowId::from_u32(50)), None);
    }

    #[test]
    fn bank_respects_the_bottleneck_and_recovers_from_loss() {
        // 50 greedy flows into a 10 Mbps pipe: drops are guaranteed, so
        // the bank must exercise fast retransmit / RTO and still keep
        // aggregate goodput near capacity without overshooting it.
        let (mut sim, tx, rx) = bank_pair(50, 5);
        sim.enable_checks();
        sim.run_until(SimTime::from_secs(10));
        assert!(sim.violations().is_empty(), "{:?}", sim.violations());
        let sender = sim.agent_as::<SenderBank>(tx).unwrap();
        assert!(
            sender.retransmissions() > 0,
            "an oversubscribed bottleneck must force recovery: {sender:?}"
        );
        let sink = sim.agent_as::<SinkBank>(rx).unwrap();
        let util = sink.goodput_bytes() as f64 * 8.0 / 10.0 / 10e6;
        assert!(util > 0.5, "goodput collapsed: {util}");
        assert!(util < 1.02, "goodput exceeds capacity: {util}");
    }

    #[test]
    fn bank_memory_is_flat() {
        let bank = SenderBank::new(
            FlowId::from_u32(0),
            100_000,
            NodeId::from_u32(1),
            Bytes::from_u64(1000),
            SimDuration::from_secs(1),
        );
        // ~25 bytes of array state per flow, not a boxed agent each.
        assert_eq!(bank.approx_bytes(), 100_000 * 25);
        assert_eq!(bank.flow_range(), 0..100_000);
    }

    #[test]
    fn banks_are_deterministic_and_cloneable() {
        let run = |seed| {
            let (mut sim, _, rx) = bank_pair(20, seed);
            sim.run_until(SimTime::from_secs(5));
            let sink = sim.agent_as::<SinkBank>(rx).unwrap();
            (sink.delivered_segments(), sink.acks_sent())
        };
        assert_eq!(run(7), run(7), "same seed, same physics");

        // clone_box powers checkpoint/fork: a forked run must continue
        // identically to the original.
        let (mut sim, _, rx) = bank_pair(20, 7);
        sim.run_until(SimTime::from_secs(2));
        let checkpoint = sim.checkpoint().expect("banks are cloneable");
        let mut fork = Simulator::fork(&checkpoint);
        sim.run_until(SimTime::from_secs(5));
        fork.run_until(SimTime::from_secs(5));
        let a = sim.agent_as::<SinkBank>(rx).unwrap().delivered_segments();
        let b = fork.agent_as::<SinkBank>(rx).unwrap().delivered_segments();
        assert_eq!(a, b, "fork must resume bit-identically");
    }
}
