//! Pluggable congestion control: a fold-function registry behind
//! [`crate::sender::TcpSender`].
//!
//! The sender owns a tiny [`CcState`] (`cwnd`, `ssthresh`, both in
//! fractional segments) and folds congestion events through a boxed
//! [`CongestionControl`]: cumulative ACKs, dup-ack loss, ECN echoes and
//! retransmission timeouts. Everything *transport*-shaped — fast-recovery
//! structure, NewReno partial-ACK deflation, SACK scoreboards, limited
//! transmit, go-back-N after an RTO — stays in the sender; the algorithm
//! only decides how the window grows and how far it falls.
//!
//! Algorithms are selected declaratively by [`CcSpec`], a string-keyed
//! registry (`aimd`, `cubic`, `bbr-lite`, `dctcp`, plus the
//! parameterized `aimd(a,b)` form accepted by [`parse_cc_key`]) carried
//! in [`TcpConfig::cc`]. Scenarios, sweeps, fuzz cases and the CLI all
//! pick algorithms through this one enum, so congestion control is data,
//! not code.
//!
//! ## Contract
//!
//! Implementations must be:
//!
//! * **Deterministic** — pure functions of the event stream (no wall
//!   clock, no RNG). Two runs of the same scenario must produce the
//!   same window trajectory bit for bit.
//! * **Checkpoint-cloneable** — plain data, cloned via
//!   [`CongestionControl::clone_box`] when the simulator snapshots or
//!   forks a run. Warm-start forking and `pdos fuzz` rely on this.
//! * **Bounded** — reductions must keep `ssthresh` at or above
//!   [`CongestionControl::ssthresh_floor`]; the sender clamps `cwnd`
//!   into `[1, max_cwnd]` after every fold.
//!
//! See `docs/CC.md` for the full contract and a walkthrough of adding a
//! new algorithm.

use crate::config::{AimdParams, TcpConfig};
use pdos_sim::time::{SimDuration, SimTime};
use std::fmt;

/// The congestion variables the sender owns and every algorithm folds
/// over. Both are fractional *segment* counts, matching the ns-2 agents
/// the paper simulates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CcState {
    /// Congestion window in segments.
    pub cwnd: f64,
    /// Slow-start threshold in segments.
    pub ssthresh: f64,
}

/// One cumulative-ACK observation handed to [`CongestionControl::on_ack`].
#[derive(Debug, Clone, Copy)]
pub struct AckSample {
    /// Segments newly acknowledged by this cumulative ACK.
    pub newly: u64,
    /// Simulation time the ACK was processed.
    pub now: SimTime,
    /// Fresh RTT sample, if Karn's rule allowed one on this ACK.
    pub rtt: Option<SimDuration>,
    /// Whether this ACK carried the ECN echo bit (only meaningful when
    /// the config enables ECN).
    pub ecn_echo: bool,
}

/// String-keyed registry of congestion-control algorithms.
///
/// The default is [`CcSpec::Aimd`], which reproduces the paper's
/// `AIMD(a, b)` sender byte for byte — configs that never mention `cc`
/// hash and simulate exactly as before.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CcSpec {
    /// The paper's `AIMD(a, b)` response (parameters in
    /// [`TcpConfig::aimd`]). Registry key `aimd`, or `aimd(a,b)` to set
    /// the parameters in the same breath.
    #[default]
    Aimd,
    /// RFC 8312 CUBIC window growth with fast convergence. Key `cubic`.
    Cubic,
    /// A simplified BBR: startup/drain/probe-bw pacing-gain cycle over
    /// windowed max-bandwidth and min-RTT filters. Key `bbr-lite`.
    BbrLite,
    /// DCTCP: ECN-fraction `alpha` EWMA scales the window reduction.
    /// Key `dctcp`.
    Dctcp,
}

impl CcSpec {
    /// Every registered algorithm, in registry order.
    pub const ALL: [CcSpec; 4] = [CcSpec::Aimd, CcSpec::Cubic, CcSpec::BbrLite, CcSpec::Dctcp];

    /// The registry key (`aimd`, `cubic`, `bbr-lite`, `dctcp`).
    pub fn key(self) -> &'static str {
        match self {
            CcSpec::Aimd => "aimd",
            CcSpec::Cubic => "cubic",
            CcSpec::BbrLite => "bbr-lite",
            CcSpec::Dctcp => "dctcp",
        }
    }

    /// Looks up a bare registry key. For the parameterized `aimd(a,b)`
    /// form use [`parse_cc_key`].
    pub fn from_key(key: &str) -> Option<CcSpec> {
        CcSpec::ALL.into_iter().find(|c| c.key() == key)
    }

    /// Instantiates the algorithm's initial state machine.
    pub fn build(self) -> Box<dyn CongestionControl> {
        match self {
            CcSpec::Aimd => Box::new(Aimd),
            CcSpec::Cubic => Box::new(Cubic::new()),
            CcSpec::BbrLite => Box::new(BbrLite::new()),
            CcSpec::Dctcp => Box::new(Dctcp::new()),
        }
    }
}

impl fmt::Display for CcSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

/// Parses a registry key, accepting the parameterized `aimd(a,b)` form.
///
/// Returns the spec plus the AIMD parameters when the key carries them;
/// the caller applies the parameters to [`TcpConfig::aimd`].
pub fn parse_cc_key(key: &str) -> Result<(CcSpec, Option<AimdParams>), String> {
    let key = key.trim();
    if let Some(cc) = CcSpec::from_key(key) {
        return Ok((cc, None));
    }
    if let Some(rest) = key.strip_prefix("aimd(") {
        let inner = rest
            .strip_suffix(')')
            .ok_or_else(|| format!("malformed cc key `{key}`: missing `)`"))?;
        let mut parts = inner.split(',');
        let (a, b) = match (parts.next(), parts.next(), parts.next()) {
            (Some(a), Some(b), None) => (a.trim(), b.trim()),
            _ => return Err(format!("malformed cc key `{key}`: want `aimd(a,b)`")),
        };
        let a: f64 = a
            .parse()
            .map_err(|_| format!("bad AIMD increase `{a}` in `{key}`"))?;
        let b: f64 = b
            .parse()
            .map_err(|_| format!("bad AIMD decrease `{b}` in `{key}`"))?;
        let params = AimdParams::new(a, b).map_err(|e| format!("bad `{key}`: {e}"))?;
        return Ok((CcSpec::Aimd, Some(params)));
    }
    Err(format!(
        "unknown cc algorithm `{key}` (known: aimd, aimd(a,b), cubic, bbr-lite, dctcp)"
    ))
}

/// The congestion-control fold: how the window grows on ACKs and how far
/// it falls on loss, ECN and RTO.
///
/// The sender calls exactly one method per congestion event and applies
/// the result through its own clamped `set_cwnd`; implementations never
/// see or mutate transport state. `on_loss`/`on_rto` set only
/// `ssthresh` — the sender decides the post-event window (fast-recovery
/// entry inflates to `ssthresh + dupack_threshold`; an RTO collapses to
/// one segment for go-back-N).
pub trait CongestionControl: fmt::Debug + Send {
    /// Which registry entry this state machine implements.
    fn kind(&self) -> CcSpec;

    /// Clones the state machine for checkpoint snapshots and forks.
    fn clone_box(&self) -> Box<dyn CongestionControl>;

    /// Downcast hook for tests and debug tooling.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Window growth on a cumulative ACK outside loss recovery. Returns
    /// the new (unclamped) `cwnd`; the sender clamps into
    /// `[1, max_cwnd]` and records the trace sample.
    fn on_ack(&mut self, st: &CcState, cfg: &TcpConfig, ack: &AckSample) -> f64;

    /// Dup-ack loss signal: set the reduction target `st.ssthresh`.
    fn on_loss(&mut self, st: &mut CcState, cfg: &TcpConfig, now: SimTime);

    /// ECN echo (the sender gates to once per window): set
    /// `st.ssthresh` and return the new (unclamped) `cwnd`.
    fn on_ecn(&mut self, st: &mut CcState, cfg: &TcpConfig, now: SimTime) -> f64;

    /// Retransmission timeout: set `st.ssthresh`. The sender collapses
    /// `cwnd` to one segment afterwards.
    fn on_rto(&mut self, st: &mut CcState, cfg: &TcpConfig, now: SimTime);

    /// Fast recovery completed (full ACK). The sender then sets
    /// `cwnd = st.ssthresh`; algorithms that keep epoch state (CUBIC)
    /// reset it here.
    fn on_recovery_exit(&mut self, _st: &mut CcState, _cfg: &TcpConfig, _now: SimTime) {}

    /// The lowest `ssthresh` this algorithm may ever set — the invariant
    /// checker audits against this contract instead of assuming AIMD
    /// halving.
    fn ssthresh_floor(&self, cfg: &TcpConfig) -> f64 {
        2.0f64.min(cfg.initial_ssthresh)
    }
}

impl Clone for Box<dyn CongestionControl> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

// ---------------------------------------------------------------------------
// aimd — the paper's AIMD(a, b), byte-identical to the pre-registry sender.
// ---------------------------------------------------------------------------

/// The paper's `AIMD(a, b)` response. Stateless: the parameters live in
/// [`TcpConfig::aimd`], and all arithmetic reproduces the original
/// hard-coded sender expressions exactly (same operations, same order),
/// so legacy golden digests hold bit for bit.
#[derive(Debug, Clone, Copy, Default)]
pub struct Aimd;

impl CongestionControl for Aimd {
    fn kind(&self) -> CcSpec {
        CcSpec::Aimd
    }

    fn clone_box(&self) -> Box<dyn CongestionControl> {
        Box::new(*self)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn on_ack(&mut self, st: &CcState, cfg: &TcpConfig, _ack: &AckSample) -> f64 {
        let a = cfg.aimd.a;
        if st.cwnd < st.ssthresh {
            // Slow start: one segment (scaled by a) per ACK.
            st.cwnd + a
        } else {
            // Congestion avoidance: ~a segments per RTT.
            st.cwnd + a / st.cwnd
        }
    }

    fn on_loss(&mut self, st: &mut CcState, cfg: &TcpConfig, _now: SimTime) {
        st.ssthresh = (st.cwnd * cfg.aimd.b).max(2.0);
    }

    fn on_ecn(&mut self, st: &mut CcState, cfg: &TcpConfig, _now: SimTime) -> f64 {
        st.ssthresh = (st.cwnd * cfg.aimd.b).max(2.0);
        st.ssthresh
    }

    fn on_rto(&mut self, st: &mut CcState, cfg: &TcpConfig, _now: SimTime) {
        st.ssthresh = (st.cwnd * cfg.aimd.b).max(2.0);
    }
}

// ---------------------------------------------------------------------------
// cubic — RFC 8312 window growth with fast convergence.
// ---------------------------------------------------------------------------

/// RFC 8312 scaling constant `C` (segments/sec^3).
const CUBIC_C: f64 = 0.4;
/// RFC 8312 multiplicative decrease factor `beta_cubic`.
const CUBIC_BETA: f64 = 0.7;

/// RFC 8312 CUBIC: the window follows `W(t) = C·(t − K)³ + w_max` in
/// time since the last congestion epoch began, with fast convergence
/// shrinking `w_max` when a flow backs off twice without reclaiming it.
///
/// Growth between loss events is monotone: each ACK moves the window at
/// most one segment toward the cubic target and never backwards.
#[derive(Debug, Clone, Copy)]
pub struct Cubic {
    /// Window just before the last reduction (the plateau the cubic
    /// curve aims back at).
    w_max: f64,
    /// Time offset `K` to reach `w_max` in the current epoch.
    k: f64,
    /// Start of the current congestion-avoidance epoch, or `None` until
    /// the first post-reduction ACK re-arms it.
    epoch_start: Option<SimTime>,
}

impl Cubic {
    /// Fresh CUBIC state: no epoch, no remembered plateau.
    pub fn new() -> Self {
        Cubic {
            w_max: 0.0,
            k: 0.0,
            epoch_start: None,
        }
    }

    fn reduce(&mut self, st: &mut CcState) {
        // Fast convergence: a flow that backs off below its previous
        // plateau releases bandwidth by aiming lower next epoch.
        if st.cwnd < self.w_max {
            self.w_max = st.cwnd * (2.0 - CUBIC_BETA) / 2.0;
        } else {
            self.w_max = st.cwnd;
        }
        st.ssthresh = (st.cwnd * CUBIC_BETA).max(2.0);
        self.epoch_start = None;
    }
}

impl Default for Cubic {
    fn default() -> Self {
        Cubic::new()
    }
}

impl CongestionControl for Cubic {
    fn kind(&self) -> CcSpec {
        CcSpec::Cubic
    }

    fn clone_box(&self) -> Box<dyn CongestionControl> {
        Box::new(*self)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn on_ack(&mut self, st: &CcState, _cfg: &TcpConfig, ack: &AckSample) -> f64 {
        if st.cwnd < st.ssthresh {
            // Standard slow start below ssthresh.
            return st.cwnd + 1.0;
        }
        let t0 = match self.epoch_start {
            Some(t0) => t0,
            None => {
                // New epoch: aim the cubic curve from the current window
                // back up at w_max over K seconds.
                if self.w_max < st.cwnd {
                    self.w_max = st.cwnd;
                }
                self.k = ((self.w_max - st.cwnd) / CUBIC_C).max(0.0).cbrt();
                self.epoch_start = Some(ack.now);
                ack.now
            }
        };
        let t = ack.now.saturating_since(t0).as_secs_f64();
        let target = CUBIC_C * (t - self.k).powi(3) + self.w_max;
        // Per-ACK step toward the target: never negative (monotone
        // between losses), at most one segment (no line-rate bursts).
        let step = ((target - st.cwnd) / st.cwnd).clamp(0.0, 1.0);
        st.cwnd + step
    }

    fn on_loss(&mut self, st: &mut CcState, _cfg: &TcpConfig, _now: SimTime) {
        self.reduce(st);
    }

    fn on_ecn(&mut self, st: &mut CcState, _cfg: &TcpConfig, _now: SimTime) -> f64 {
        self.reduce(st);
        st.ssthresh
    }

    fn on_rto(&mut self, st: &mut CcState, _cfg: &TcpConfig, _now: SimTime) {
        self.reduce(st);
    }

    fn on_recovery_exit(&mut self, _st: &mut CcState, _cfg: &TcpConfig, _now: SimTime) {
        // Congestion avoidance resumes from ssthresh: restart the epoch
        // clock there, not at the pre-loss window.
        self.epoch_start = None;
    }
}

// ---------------------------------------------------------------------------
// bbr-lite — startup/drain/probe-bw over windowed max-bw / min-rtt.
// ---------------------------------------------------------------------------

/// Probe-bandwidth pacing-gain cycle (RFC-draft BBR values): one probe
/// phase, one drain phase, six cruise phases.
pub const BBR_PACING_GAINS: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
/// Delivery-rate samples kept in the windowed max filter.
const BBR_BW_WINDOW: usize = 8;
/// Startup exits after this many ACKs without ≥25% bandwidth growth.
const BBR_FULL_BW_ROUNDS: u32 = 3;
/// Window floor (segments) so probing never stalls the pipe.
const BBR_MIN_CWND: f64 = 4.0;
/// RTT fallback (seconds) before the first sample lands.
const BBR_FALLBACK_RTT: f64 = 0.1;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BbrPhase {
    Startup,
    Drain,
    ProbeBw(usize),
}

/// A simplified BBR: model the path (windowed max delivery rate ×
/// windowed min RTT = BDP) and size the window as `gain × BDP`, cycling
/// the eight [`BBR_PACING_GAINS`] one min-RTT apart. Loss sets
/// `ssthresh` mildly but the model — not the loss — dictates the window,
/// which is exactly why pulsing attacks tuned to AIMD's backoff land
/// differently here.
#[derive(Debug, Clone, Copy)]
pub struct BbrLite {
    phase: BbrPhase,
    /// Ring of recent delivery-rate samples (segments/sec).
    bw_samples: [f64; BBR_BW_WINDOW],
    bw_pos: usize,
    /// Windowed-min RTT estimate.
    min_rtt: Option<SimDuration>,
    /// Previous ACK arrival, for delivery-rate sampling.
    last_ack_at: Option<SimTime>,
    /// Best bandwidth seen in startup and ACKs since it last grew.
    full_bw: f64,
    full_bw_rounds: u32,
    /// When the current probe-bw phase began.
    phase_start: Option<SimTime>,
}

impl BbrLite {
    /// Fresh BBR-lite state in startup.
    pub fn new() -> Self {
        BbrLite {
            phase: BbrPhase::Startup,
            bw_samples: [0.0; BBR_BW_WINDOW],
            bw_pos: 0,
            min_rtt: None,
            last_ack_at: None,
            full_bw: 0.0,
            full_bw_rounds: 0,
            phase_start: None,
        }
    }

    fn max_bw(&self) -> f64 {
        self.bw_samples.iter().copied().fold(0.0, f64::max)
    }

    fn rtt_secs(&self) -> f64 {
        self.min_rtt
            .map(SimDuration::as_secs_f64)
            .filter(|r| *r > 0.0)
            .unwrap_or(BBR_FALLBACK_RTT)
    }

    /// Bandwidth-delay product in segments, per the current model.
    fn bdp(&self) -> f64 {
        self.max_bw() * self.rtt_secs()
    }

    /// The probe-bw phase index, if the cycle is running (test hook).
    #[doc(hidden)]
    pub fn probe_phase(&self) -> Option<usize> {
        match self.phase {
            BbrPhase::ProbeBw(i) => Some(i),
            _ => None,
        }
    }
}

impl Default for BbrLite {
    fn default() -> Self {
        BbrLite::new()
    }
}

impl CongestionControl for BbrLite {
    fn kind(&self) -> CcSpec {
        CcSpec::BbrLite
    }

    fn clone_box(&self) -> Box<dyn CongestionControl> {
        Box::new(*self)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn on_ack(&mut self, st: &CcState, _cfg: &TcpConfig, ack: &AckSample) -> f64 {
        if let Some(rtt) = ack.rtt {
            match self.min_rtt {
                Some(m) if m <= rtt => {}
                _ => self.min_rtt = Some(rtt),
            }
        }
        if let Some(last) = self.last_ack_at {
            let elapsed = ack.now.saturating_since(last).as_secs_f64();
            if elapsed > 0.0 {
                self.bw_samples[self.bw_pos] = ack.newly as f64 / elapsed;
                self.bw_pos = (self.bw_pos + 1) % BBR_BW_WINDOW;
            }
        }
        self.last_ack_at = Some(ack.now);

        let bdp = self.bdp();
        match self.phase {
            BbrPhase::Startup => {
                let bw = self.max_bw();
                if bw > self.full_bw * 1.25 {
                    self.full_bw = bw;
                    self.full_bw_rounds = 0;
                } else if bw > 0.0 {
                    self.full_bw_rounds += 1;
                    if self.full_bw_rounds >= BBR_FULL_BW_ROUNDS && bdp > 0.0 {
                        self.phase = BbrPhase::Drain;
                    }
                }
                // Startup: double per RTT, like slow start.
                st.cwnd + ack.newly as f64
            }
            BbrPhase::Drain => {
                let target = bdp.max(BBR_MIN_CWND);
                if st.cwnd <= target {
                    self.phase = BbrPhase::ProbeBw(0);
                    self.phase_start = Some(ack.now);
                    return target;
                }
                // Drain the startup queue: step down toward BDP.
                (st.cwnd * 0.75).max(target)
            }
            BbrPhase::ProbeBw(idx) => {
                let mut idx = idx;
                let rtt = SimDuration::from_secs_f64(self.rtt_secs());
                let started = *self.phase_start.get_or_insert(ack.now);
                if ack.now.saturating_since(started) >= rtt {
                    idx = (idx + 1) % BBR_PACING_GAINS.len();
                    self.phase = BbrPhase::ProbeBw(idx);
                    self.phase_start = Some(ack.now);
                }
                (BBR_PACING_GAINS[idx] * bdp).max(BBR_MIN_CWND)
            }
        }
    }

    fn on_loss(&mut self, st: &mut CcState, _cfg: &TcpConfig, _now: SimTime) {
        // BBR is model-driven: loss nudges ssthresh but the window is
        // re-derived from (max_bw, min_rtt) on the next ACK.
        st.ssthresh = (st.cwnd * 0.85).max(2.0);
    }

    fn on_ecn(&mut self, st: &mut CcState, _cfg: &TcpConfig, _now: SimTime) -> f64 {
        st.ssthresh = (st.cwnd * 0.85).max(2.0);
        st.ssthresh
    }

    fn on_rto(&mut self, st: &mut CcState, _cfg: &TcpConfig, _now: SimTime) {
        // A timeout invalidates the model: restart discovery.
        st.ssthresh = (st.cwnd * 0.5).max(2.0);
        self.phase = BbrPhase::Startup;
        self.phase_start = None;
        self.full_bw = 0.0;
        self.full_bw_rounds = 0;
        self.bw_samples = [0.0; BBR_BW_WINDOW];
        self.last_ack_at = None;
    }
}

// ---------------------------------------------------------------------------
// dctcp — ECN-fraction alpha EWMA.
// ---------------------------------------------------------------------------

/// DCTCP EWMA gain `g` (RFC 8257 recommends 1/16).
const DCTCP_G: f64 = 1.0 / 16.0;

/// DCTCP: estimate the fraction `alpha` of ACKs carrying ECN echoes
/// (EWMA, gain 1/16, updated once per window of ACKed segments) and cut
/// the window by `alpha / 2` on each ECN round — a gentle, congestion-
/// proportional backoff. Loss and RTO fall back to standard halving.
///
/// `alpha` starts at 1 (RFC 8257) so the first congestion signal is as
/// conservative as Reno, then anneals to the observed marking rate.
#[derive(Debug, Clone, Copy)]
pub struct Dctcp {
    /// EWMA of the ECN-marked fraction, always in `[0, 1]`.
    alpha: f64,
    /// Segments ACKed in the current observation window.
    acked: f64,
    /// Of those, segments whose ACK carried the ECN echo.
    marked: f64,
}

impl Dctcp {
    /// Fresh DCTCP state with `alpha = 1` per RFC 8257.
    pub fn new() -> Self {
        Dctcp {
            alpha: 1.0,
            acked: 0.0,
            marked: 0.0,
        }
    }

    /// The current `alpha` estimate (test hook).
    #[doc(hidden)]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl Default for Dctcp {
    fn default() -> Self {
        Dctcp::new()
    }
}

impl CongestionControl for Dctcp {
    fn kind(&self) -> CcSpec {
        CcSpec::Dctcp
    }

    fn clone_box(&self) -> Box<dyn CongestionControl> {
        Box::new(*self)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn on_ack(&mut self, st: &CcState, _cfg: &TcpConfig, ack: &AckSample) -> f64 {
        self.acked += ack.newly as f64;
        if ack.ecn_echo {
            self.marked += ack.newly as f64;
        }
        // One observation window ≈ one cwnd's worth of ACKed segments.
        if self.acked >= st.cwnd.max(1.0) {
            let fraction = self.marked / self.acked;
            self.alpha = (1.0 - DCTCP_G) * self.alpha + DCTCP_G * fraction;
            self.acked = 0.0;
            self.marked = 0.0;
        }
        // Window growth is standard Reno.
        if st.cwnd < st.ssthresh {
            st.cwnd + 1.0
        } else {
            st.cwnd + 1.0 / st.cwnd
        }
    }

    fn on_loss(&mut self, st: &mut CcState, _cfg: &TcpConfig, _now: SimTime) {
        st.ssthresh = (st.cwnd * 0.5).max(2.0);
    }

    fn on_ecn(&mut self, st: &mut CcState, _cfg: &TcpConfig, _now: SimTime) -> f64 {
        // The DCTCP cut: proportional to the observed marking rate.
        st.ssthresh = (st.cwnd * (1.0 - self.alpha / 2.0)).max(2.0);
        st.ssthresh
    }

    fn on_rto(&mut self, st: &mut CcState, _cfg: &TcpConfig, _now: SimTime) {
        st.ssthresh = (st.cwnd * 0.5).max(2.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TcpConfig {
        TcpConfig::ns2_newreno()
    }

    fn ack_at(now_ms: u64, newly: u64) -> AckSample {
        AckSample {
            newly,
            now: SimTime::from_millis(now_ms),
            rtt: Some(SimDuration::from_millis(50)),
            ecn_echo: false,
        }
    }

    #[test]
    fn registry_keys_round_trip() {
        for cc in CcSpec::ALL {
            assert_eq!(CcSpec::from_key(cc.key()), Some(cc));
            assert_eq!(parse_cc_key(cc.key()).unwrap(), (cc, None));
            assert_eq!(cc.build().kind(), cc);
        }
        assert_eq!(CcSpec::from_key("reno"), None);
        assert!(parse_cc_key("reno").is_err());
    }

    #[test]
    fn parameterized_aimd_key_parses() {
        let (cc, params) = parse_cc_key("aimd(0.5, 0.875)").unwrap();
        assert_eq!(cc, CcSpec::Aimd);
        let p = params.unwrap();
        assert!((p.a - 0.5).abs() < 1e-12);
        assert!((p.b - 0.875).abs() < 1e-12);
        assert!(parse_cc_key("aimd(1.0)").is_err());
        assert!(parse_cc_key("aimd(1.0, 2.0)").is_err(), "b >= 1 rejected");
        assert!(parse_cc_key("aimd(x, 0.5)").is_err());
    }

    #[test]
    fn aimd_matches_legacy_expressions() {
        let c = cfg();
        let mut cc = Aimd;
        let st = CcState {
            cwnd: 4.0,
            ssthresh: 8.0,
        };
        // Slow start: +a per ACK.
        assert_eq!(cc.on_ack(&st, &c, &ack_at(1, 1)), 4.0 + c.aimd.a);
        let st = CcState {
            cwnd: 10.0,
            ssthresh: 8.0,
        };
        // Congestion avoidance: +a/cwnd per ACK.
        assert_eq!(cc.on_ack(&st, &c, &ack_at(1, 1)), 10.0 + c.aimd.a / 10.0);
        let mut st = CcState {
            cwnd: 10.0,
            ssthresh: 8.0,
        };
        cc.on_loss(&mut st, &c, SimTime::from_millis(2));
        assert_eq!(st.ssthresh, (10.0 * c.aimd.b).max(2.0));
    }

    #[test]
    fn cubic_growth_is_monotone_between_losses() {
        let c = cfg();
        let mut cc = Cubic::new();
        let mut st = CcState {
            cwnd: 20.0,
            ssthresh: 10.0,
        };
        cc.on_loss(&mut st, &c, SimTime::from_millis(0));
        st.cwnd = st.ssthresh;
        let mut prev = st.cwnd;
        for i in 0..2_000u64 {
            let next = cc.on_ack(&st, &c, &ack_at(10 + i * 5, 1));
            assert!(
                next >= prev - 1e-12,
                "cubic shrank between losses: {prev} -> {next} at ack {i}"
            );
            assert!(next <= prev + 1.0 + 1e-12, "per-ack step bounded by 1");
            st.cwnd = next.clamp(1.0, c.max_cwnd);
            prev = st.cwnd;
        }
        // The curve passes its plateau and keeps probing beyond w_max.
        assert!(
            st.cwnd > 20.0,
            "cubic reclaimed and passed w_max: {}",
            st.cwnd
        );
    }

    #[test]
    fn cubic_fast_convergence_lowers_the_plateau() {
        let c = cfg();
        let mut cc = Cubic::new();
        let mut st = CcState {
            cwnd: 40.0,
            ssthresh: 20.0,
        };
        cc.on_loss(&mut st, &c, SimTime::from_millis(0));
        assert_eq!(cc.w_max, 40.0);
        // Second loss below the plateau: w_max drops under the window.
        st.cwnd = 30.0;
        cc.on_loss(&mut st, &c, SimTime::from_millis(100));
        assert!((cc.w_max - 30.0 * (2.0 - CUBIC_BETA) / 2.0).abs() < 1e-12);
        assert_eq!(st.ssthresh, (30.0 * CUBIC_BETA).max(2.0));
    }

    #[test]
    fn bbr_lite_cycles_probe_gains_periodically() {
        let c = cfg();
        let mut cc = BbrLite::new();
        let mut st = CcState {
            cwnd: 4.0,
            ssthresh: 64.0,
        };
        // Drive steady ACKs 10 ms apart with a 50 ms RTT until the cycle
        // starts, then record phase transitions.
        let mut phases = Vec::new();
        for i in 0..3_000u64 {
            let next = cc.on_ack(&st, &c, &ack_at(10 * (i + 1), 2));
            st.cwnd = next.clamp(1.0, c.max_cwnd);
            if let Some(p) = cc.probe_phase() {
                if phases.last() != Some(&p) {
                    phases.push(p);
                }
            }
        }
        assert!(
            phases.len() >= 17,
            "cycle ran at least twice around: {phases:?}"
        );
        // Phases advance strictly cyclically: 0,1,...,7,0,1,...
        for w in phases.windows(2) {
            assert_eq!(w[1], (w[0] + 1) % BBR_PACING_GAINS.len(), "{phases:?}");
        }
        assert_eq!(phases[0], 0, "cycle starts at the probe phase");
    }

    #[test]
    fn bbr_lite_window_tracks_gain_times_bdp() {
        let c = cfg();
        let mut cc = BbrLite::new();
        let mut st = CcState {
            cwnd: 4.0,
            ssthresh: 64.0,
        };
        let mut last = 0.0;
        for i in 0..3_000u64 {
            last = cc.on_ack(&st, &c, &ack_at(10 * (i + 1), 2));
            st.cwnd = last.clamp(1.0, c.max_cwnd);
        }
        let (idx, bdp) = (cc.probe_phase().unwrap(), cc.bdp());
        assert!((last - (BBR_PACING_GAINS[idx] * bdp).max(BBR_MIN_CWND)).abs() < 1e-9);
        // 2 segments per 10 ms = 200 seg/s; min RTT 50 ms → BDP = 10.
        assert!(
            (bdp - 10.0).abs() < 1.0,
            "bdp model near 10 segments: {bdp}"
        );
    }

    #[test]
    fn dctcp_alpha_anneals_toward_marking_rate() {
        let c = cfg();
        let mut cc = Dctcp::new();
        let st = CcState {
            cwnd: 4.0,
            ssthresh: 2.0,
        };
        // No marks: alpha decays geometrically from 1 toward 0.
        for i in 0..400u64 {
            cc.on_ack(&st, &c, &ack_at(i + 1, 2));
        }
        assert!(
            cc.alpha() < 0.01,
            "alpha decays without marks: {}",
            cc.alpha()
        );
        // All-marked stream: alpha climbs back toward 1.
        for i in 0..400u64 {
            let mut a = ack_at(500 + i, 2);
            a.ecn_echo = true;
            cc.on_ack(&st, &c, &a);
        }
        assert!(
            cc.alpha() > 0.99,
            "alpha tracks full marking: {}",
            cc.alpha()
        );
    }

    #[test]
    fn dctcp_cut_is_proportional_to_alpha() {
        let c = cfg();
        let mut cc = Dctcp::new();
        let st0 = CcState {
            cwnd: 4.0,
            ssthresh: 2.0,
        };
        for i in 0..400u64 {
            cc.on_ack(&st0, &c, &ack_at(i + 1, 2));
        }
        let alpha = cc.alpha();
        let mut st = CcState {
            cwnd: 20.0,
            ssthresh: 10.0,
        };
        let cut = cc.on_ecn(&mut st, &c, SimTime::from_secs(1));
        assert!((cut - (20.0 * (1.0 - alpha / 2.0)).max(2.0)).abs() < 1e-12);
        assert_eq!(st.ssthresh, cut);
    }

    #[test]
    fn all_algorithms_clone_box_preserves_state() {
        for cc in CcSpec::ALL {
            let c = cfg();
            let mut machine = cc.build();
            let mut st = CcState {
                cwnd: 12.0,
                ssthresh: 6.0,
            };
            for i in 0..50u64 {
                let next = machine.on_ack(&st, &c, &ack_at(10 * (i + 1), 1));
                st.cwnd = next.clamp(1.0, c.max_cwnd);
            }
            let mut forked = machine.clone_box();
            let mut st2 = st;
            // Identical continuations: the clone is a full state snapshot.
            for i in 50..80u64 {
                let a = machine.on_ack(&st, &c, &ack_at(10 * (i + 1), 1));
                let b = forked.on_ack(&st2, &c, &ack_at(10 * (i + 1), 1));
                assert_eq!(a.to_bits(), b.to_bits(), "{cc:?} fork diverged at {i}");
                st.cwnd = a.clamp(1.0, c.max_cwnd);
                st2.cwnd = b.clamp(1.0, c.max_cwnd);
            }
        }
    }

    proptest::proptest! {
        /// Every algorithm, fed arbitrary ack/loss/ecn/rto interleavings,
        /// keeps the clamped window in [1, max_cwnd], keeps ssthresh at
        /// or above its contracted floor, and (DCTCP) keeps alpha in
        /// [0, 1].
        #[test]
        fn prop_cc_state_machines_stay_bounded(
            alg in 0usize..4,
            ops in proptest::collection::vec((0u8..4, 1u64..8), 1..300)
        ) {
            let c = cfg();
            let cc_spec = CcSpec::ALL[alg];
            let mut cc = cc_spec.build();
            let mut st = CcState { cwnd: c.initial_cwnd, ssthresh: c.initial_ssthresh };
            let mut now_ms = 0u64;
            for (kind, arg) in ops {
                now_ms += arg * 7;
                let now = SimTime::from_millis(now_ms);
                match kind {
                    0 => {
                        let mut a = ack_at(now_ms, arg);
                        a.ecn_echo = arg % 3 == 0;
                        let next = cc.on_ack(&st, &c, &a);
                        proptest::prop_assert!(next.is_finite());
                        st.cwnd = next.clamp(1.0, c.max_cwnd);
                    }
                    1 => {
                        cc.on_loss(&mut st, &c, now);
                        st.cwnd = st.ssthresh.clamp(1.0, c.max_cwnd);
                    }
                    2 => {
                        let next = cc.on_ecn(&mut st, &c, now);
                        st.cwnd = next.clamp(1.0, c.max_cwnd);
                    }
                    _ => {
                        cc.on_rto(&mut st, &c, now);
                        st.cwnd = 1.0;
                    }
                }
                proptest::prop_assert!(st.cwnd >= 1.0 && st.cwnd <= c.max_cwnd);
                proptest::prop_assert!(st.ssthresh.is_finite());
                proptest::prop_assert!(st.ssthresh >= cc.ssthresh_floor(&c));
                if let CcSpec::Dctcp = cc_spec {
                    let d: &Dctcp = cc.as_any().downcast_ref::<Dctcp>().unwrap();
                    proptest::prop_assert!((0.0..=1.0).contains(&d.alpha()));
                }
            }
        }
    }
}
