//! TCP agent configuration.

use crate::cc::{parse_cc_key, CcSpec};
use pdos_sim::time::SimDuration;
use pdos_sim::units::Bytes;
use std::fmt;

/// The general additive-increase / multiplicative-decrease parameters of
/// §2.1: on a congestion signal the window drops from `W` to `b·W`; each
/// RTT it grows by `a` segments (divided by the delayed-ACK factor `d`).
///
/// TCP Tahoe/Reno/NewReno use `AIMD(1, 0.5)`.
///
/// # Examples
///
/// ```
/// use pdos_tcp::config::AimdParams;
///
/// let std = AimdParams::TCP_STANDARD;
/// assert_eq!((std.a, std.b), (1.0, 0.5));
/// assert!(AimdParams::new(0.31, 0.875).is_ok()); // a TCP-friendly pair
/// assert!(AimdParams::new(1.0, 1.5).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AimdParams {
    /// Additive increase, in segments per round-trip time.
    pub a: f64,
    /// Multiplicative decrease factor in `(0, 1)`.
    pub b: f64,
}

impl AimdParams {
    /// Standard TCP: `AIMD(1, 0.5)`.
    pub const TCP_STANDARD: AimdParams = AimdParams { a: 1.0, b: 0.5 };

    /// Creates a validated parameter pair.
    ///
    /// # Errors
    ///
    /// Returns a message when `a <= 0` or `b` is outside `(0, 1)`.
    pub fn new(a: f64, b: f64) -> Result<Self, String> {
        if !(a > 0.0 && a.is_finite()) {
            return Err(format!("AIMD increase a must be positive, got {a}"));
        }
        if !(b > 0.0 && b < 1.0) {
            return Err(format!("AIMD decrease b must be in (0,1), got {b}"));
        }
        Ok(AimdParams { a, b })
    }
}

impl Default for AimdParams {
    fn default() -> Self {
        Self::TCP_STANDARD
    }
}

/// Which loss-recovery behaviour the sender uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CcVariant {
    /// NewReno: fast retransmit, fast recovery with partial-ACK
    /// retransmissions (RFC 3782). The paper's simulations use this.
    #[default]
    NewReno,
    /// Reno: fast retransmit, fast recovery; partial ACKs end recovery.
    Reno,
    /// Tahoe: fast retransmit but no fast recovery — every loss signal
    /// collapses the window to one segment.
    Tahoe,
}

/// Full sender/receiver configuration.
#[derive(Clone, PartialEq)]
pub struct TcpConfig {
    /// Maximum segment size (payload bytes per segment).
    pub mss: Bytes,
    /// Header overhead added to each data segment on the wire.
    pub header: Bytes,
    /// Size of a pure ACK on the wire.
    pub ack_size: Bytes,
    /// AIMD parameters.
    pub aimd: AimdParams,
    /// Delayed-ACK factor `d`: the receiver ACKs every `d` in-order
    /// segments (RFC 2581 uses 2).
    pub delayed_ack: u32,
    /// Upper bound on how long the receiver holds a delayed ACK.
    pub ack_delay: SimDuration,
    /// Initial congestion window in segments.
    pub initial_cwnd: f64,
    /// Initial slow-start threshold in segments.
    pub initial_ssthresh: f64,
    /// Hard cap on the congestion window in segments (the receiver's
    /// advertised window).
    pub max_cwnd: f64,
    /// Duplicate-ACK threshold for fast retransmit.
    pub dupack_threshold: u32,
    /// Selective acknowledgments (RFC 2018, compact two-block form): the
    /// receiver reports out-of-order ranges and the sender retransmits
    /// exactly the holes — recovering multi-loss windows without
    /// timeouts.
    pub sack: bool,
    /// Limited Transmit (RFC 3042): send one new segment on each of the
    /// first two duplicate ACKs, keeping the ACK clock alive so small
    /// windows can still reach the fast-retransmit threshold instead of
    /// stalling into timeout — the exact failure mode that turns the
    /// paper's normal-gain attacks into over-gain ones.
    pub limited_transmit: bool,
    /// Lower bound of the retransmission timeout. ns-2's default TCP uses
    /// 1 s; the paper's Linux test-bed had 200 ms.
    pub min_rto: SimDuration,
    /// Upper bound of the retransmission timeout.
    pub max_rto: SimDuration,
    /// Loss-recovery variant.
    pub variant: CcVariant,
    /// Negotiate ECN: data segments are sent ECN-capable, the receiver
    /// echoes congestion-experienced marks, and the sender halves its
    /// window on an echo instead of waiting for a loss.
    pub ecn: bool,
    /// Randomized-RTO defense (Yang/Gerla/Sanadidi, §1.1 of the paper):
    /// each armed retransmission timer is stretched by a uniform factor in
    /// `[1, 1 + rto_rand_spread]`. `0.0` disables (standard TCP).
    pub rto_rand_spread: f64,
    /// Seed for the RTO-randomization draw (combined with the flow id so
    /// each sender gets its own deterministic stream).
    pub rto_rand_seed: u64,
    /// Stop after successfully delivering this many segments
    /// (`None` = greedy FTP source).
    pub limit_segments: Option<u64>,
    /// Mice mode: send in request-sized bursts of this many segments over
    /// one persistent connection, idling [`TcpConfig::think_time`] between
    /// bursts and re-entering slow start after each idle period (RFC 2861
    /// congestion-window validation). `None` = continuous (elephant).
    pub burst_segments: Option<u64>,
    /// Idle time between bursts in mice mode.
    pub think_time: SimDuration,
    /// Record a `(time, cwnd)` sample at every window change (costs memory;
    /// enable only when the experiment reads the trajectory).
    pub record_cwnd: bool,
    /// Congestion-control algorithm (see [`crate::cc`]). The default,
    /// [`CcSpec::Aimd`], reproduces the paper's sender exactly.
    pub cc: CcSpec,
}

// Hand-rolled `Debug` because the derive output is hash-load-bearing:
// `ExperimentSpec::stable_hash`, the sweep prefix hash and the baseline
// memo key all digest `{scenario:?}`, which embeds this struct. The
// impl prints the original 22 fields exactly as the derive did and
// appends `cc` only when it differs from the default, so every config
// that predates the registry — and every `cc = aimd` config — keeps its
// legacy hash, derived seeds and golden digests bit for bit.
impl fmt::Debug for TcpConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_struct("TcpConfig");
        d.field("mss", &self.mss)
            .field("header", &self.header)
            .field("ack_size", &self.ack_size)
            .field("aimd", &self.aimd)
            .field("delayed_ack", &self.delayed_ack)
            .field("ack_delay", &self.ack_delay)
            .field("initial_cwnd", &self.initial_cwnd)
            .field("initial_ssthresh", &self.initial_ssthresh)
            .field("max_cwnd", &self.max_cwnd)
            .field("dupack_threshold", &self.dupack_threshold)
            .field("sack", &self.sack)
            .field("limited_transmit", &self.limited_transmit)
            .field("min_rto", &self.min_rto)
            .field("max_rto", &self.max_rto)
            .field("variant", &self.variant)
            .field("ecn", &self.ecn)
            .field("rto_rand_spread", &self.rto_rand_spread)
            .field("rto_rand_seed", &self.rto_rand_seed)
            .field("limit_segments", &self.limit_segments)
            .field("burst_segments", &self.burst_segments)
            .field("think_time", &self.think_time)
            .field("record_cwnd", &self.record_cwnd);
        if self.cc != CcSpec::Aimd {
            d.field("cc", &self.cc);
        }
        d.finish()
    }
}

impl TcpConfig {
    /// The configuration used for the paper's ns-2 simulations: NewReno,
    /// `AIMD(1, 0.5)`, 1000-byte segments, delayed ACK `d = 2`, 1 s minimum
    /// RTO (the ns-2 default).
    pub fn ns2_newreno() -> Self {
        TcpConfig {
            mss: Bytes::from_u64(1000),
            header: Bytes::from_u64(40),
            ack_size: Bytes::from_u64(40),
            aimd: AimdParams::TCP_STANDARD,
            delayed_ack: 2,
            ack_delay: SimDuration::from_millis(100),
            initial_cwnd: 2.0,
            initial_ssthresh: 64.0,
            max_cwnd: 1_000.0,
            dupack_threshold: 3,
            sack: false,
            limited_transmit: false,
            min_rto: SimDuration::from_secs(1),
            max_rto: SimDuration::from_secs(64),
            variant: CcVariant::NewReno,
            ecn: false,
            rto_rand_spread: 0.0,
            rto_rand_seed: 0,
            limit_segments: None,
            burst_segments: None,
            think_time: SimDuration::from_millis(500),
            record_cwnd: false,
            cc: CcSpec::Aimd,
        }
    }

    /// The configuration matching the paper's test-bed endpoints: Linux
    /// Fedora kernel 2.6.5 with `RTO_min = 200 ms` (§4.2).
    pub fn linux_testbed() -> Self {
        TcpConfig {
            min_rto: SimDuration::from_millis(200),
            ..Self::ns2_newreno()
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first inconsistent field.
    // `!(x >= y)` is deliberate in the checks below: unlike `x < y`, it
    // also rejects NaN inputs.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn validate(&self) -> Result<(), String> {
        if self.mss == Bytes::ZERO {
            return Err("mss must be positive".into());
        }
        if self.delayed_ack == 0 {
            return Err("delayed_ack factor must be at least 1".into());
        }
        if !(self.initial_cwnd >= 1.0) {
            return Err(format!(
                "initial_cwnd must be at least 1 segment, got {}",
                self.initial_cwnd
            ));
        }
        if !(self.max_cwnd >= self.initial_cwnd) {
            return Err("max_cwnd must be >= initial_cwnd".into());
        }
        if self.dupack_threshold == 0 {
            return Err("dupack_threshold must be at least 1".into());
        }
        if self.min_rto > self.max_rto {
            return Err("min_rto must not exceed max_rto".into());
        }
        if self.burst_segments == Some(0) {
            return Err("burst_segments must be positive when set".into());
        }
        if !(self.rto_rand_spread >= 0.0 && self.rto_rand_spread.is_finite()) {
            return Err(format!(
                "rto_rand_spread must be finite and >= 0, got {}",
                self.rto_rand_spread
            ));
        }
        AimdParams::new(self.aimd.a, self.aimd.b).map(|_| ())
    }

    /// The on-wire size of one full data segment.
    pub fn segment_wire_size(&self) -> Bytes {
        self.mss + self.header
    }

    /// Applies a congestion-control registry key (`aimd`, `aimd(a,b)`,
    /// `cubic`, `bbr-lite`, `dctcp`) to this configuration.
    ///
    /// # Errors
    ///
    /// Returns a message for unknown keys or invalid `aimd(a,b)`
    /// parameters.
    pub fn set_cc_key(&mut self, key: &str) -> Result<(), String> {
        let (cc, params) = parse_cc_key(key)?;
        self.cc = cc;
        if let Some(p) = params {
            self.aimd = p;
        }
        Ok(())
    }
}

impl Default for TcpConfig {
    fn default() -> Self {
        Self::ns2_newreno()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        assert!(TcpConfig::ns2_newreno().validate().is_ok());
        assert!(TcpConfig::linux_testbed().validate().is_ok());
        assert_eq!(
            TcpConfig::linux_testbed().min_rto,
            SimDuration::from_millis(200)
        );
        assert_eq!(TcpConfig::default(), TcpConfig::ns2_newreno());
    }

    #[test]
    fn aimd_validation() {
        assert!(AimdParams::new(0.0, 0.5).is_err());
        assert!(AimdParams::new(-1.0, 0.5).is_err());
        assert!(AimdParams::new(1.0, 0.0).is_err());
        assert!(AimdParams::new(1.0, 1.0).is_err());
        assert_eq!(AimdParams::default(), AimdParams::TCP_STANDARD);
    }

    #[test]
    fn config_validation_names_bad_fields() {
        let mut c = TcpConfig::ns2_newreno();
        c.mss = Bytes::ZERO;
        assert!(c.validate().unwrap_err().contains("mss"));

        let mut c = TcpConfig::ns2_newreno();
        c.delayed_ack = 0;
        assert!(c.validate().unwrap_err().contains("delayed_ack"));

        let mut c = TcpConfig::ns2_newreno();
        c.initial_cwnd = 0.5;
        assert!(c.validate().unwrap_err().contains("initial_cwnd"));

        let mut c = TcpConfig::ns2_newreno();
        c.max_cwnd = 1.0;
        assert!(c.validate().unwrap_err().contains("max_cwnd"));

        let mut c = TcpConfig::ns2_newreno();
        c.dupack_threshold = 0;
        assert!(c.validate().unwrap_err().contains("dupack"));

        let mut c = TcpConfig::ns2_newreno();
        c.min_rto = SimDuration::from_secs(100);
        assert!(c.validate().unwrap_err().contains("min_rto"));
    }

    #[test]
    fn mice_mode_validation() {
        let mut c = TcpConfig::ns2_newreno();
        c.burst_segments = Some(0);
        assert!(c.validate().unwrap_err().contains("burst_segments"));
        c.burst_segments = Some(20);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn ecn_and_randomization_default_off() {
        let c = TcpConfig::ns2_newreno();
        assert!(!c.ecn);
        assert_eq!(c.rto_rand_spread, 0.0);
        let mut bad = TcpConfig::ns2_newreno();
        bad.rto_rand_spread = -1.0;
        assert!(bad.validate().unwrap_err().contains("rto_rand_spread"));
    }

    #[test]
    fn wire_size_includes_header() {
        let c = TcpConfig::ns2_newreno();
        assert_eq!(c.segment_wire_size().as_u64(), 1040);
    }

    #[test]
    fn debug_omits_default_cc_and_names_overrides() {
        use crate::cc::CcSpec;
        // Legacy configs must render exactly as before the registry
        // existed: the experiment hashes digest this string.
        let legacy = format!("{:?}", TcpConfig::ns2_newreno());
        assert!(!legacy.contains("cc:"), "default cc leaked into {legacy}");
        assert!(legacy.ends_with("record_cwnd: false }"), "{legacy}");
        let mut c = TcpConfig::ns2_newreno();
        c.cc = CcSpec::Cubic;
        let tagged = format!("{c:?}");
        assert!(
            tagged.ends_with("record_cwnd: false, cc: Cubic }"),
            "{tagged}"
        );
    }

    #[test]
    fn set_cc_key_updates_algorithm_and_aimd_params() {
        use crate::cc::CcSpec;
        let mut c = TcpConfig::ns2_newreno();
        c.set_cc_key("cubic").unwrap();
        assert_eq!(c.cc, CcSpec::Cubic);
        c.set_cc_key("aimd(0.31, 0.875)").unwrap();
        assert_eq!(c.cc, CcSpec::Aimd);
        assert!((c.aimd.a - 0.31).abs() < 1e-12);
        assert!((c.aimd.b - 0.875).abs() < 1e-12);
        assert!(c.set_cc_key("vegas").is_err());
        assert!(c.validate().is_ok());
    }
}
