//! # pdos-tcp — pluggable-CC TCP agents for `pdos-sim`
//!
//! Segment-granularity TCP endpoints in the style of ns-2's agents, built
//! for the PDoS-lab reproduction of Luo & Chang (DSN 2005):
//!
//! * [`sender::TcpSender`] — greedy source with slow start, fast
//!   retransmit, NewReno/Reno/Tahoe loss recovery, and an RFC 6298-style
//!   retransmission timeout with a configurable floor (`min_rto`) — the
//!   knob the shrew attack exploits. Window growth and backoff fold
//!   through the [`cc`] registry: the paper's general
//!   additive-increase/multiplicative-decrease rule
//!   ([`config::AimdParams`], the default), RFC 8312 CUBIC, a simplified
//!   BBR and DCTCP, selected declaratively by [`cc::CcSpec`].
//! * [`sink::TcpSink`] — cumulative ACKs with the delayed-ACK factor `d`
//!   that appears throughout the paper's throughput model.
//!
//! The paper's Eq. (1) predicts that under a pulsing attack of period
//! `T_AIMD`, the window converges to `W̄ = a·T_AIMD / ((1-b)·d·RTT)`; the
//! integration tests of the workspace check this against these agents.
//!
//! ## Example
//!
//! ```
//! use pdos_sim::prelude::*;
//! use pdos_tcp::prelude::*;
//!
//! // Two hosts, one duplex link; a single greedy TCP flow between them.
//! let mut t = TopologyBuilder::with_seed(1);
//! let a = t.add_host("sender");
//! let b = t.add_host("receiver");
//! t.add_duplex_link(a, b, BitsPerSec::from_mbps(10.0),
//!                   SimDuration::from_millis(20),
//!                   QueueSpec::DropTail { capacity: 100 });
//! let mut sim = t.build()?;
//!
//! let flow = FlowId::from_u32(1);
//! let cfg = TcpConfig::ns2_newreno();
//! let tx = sim.attach_agent(a, Box::new(TcpSender::new(cfg.clone(), flow, b)));
//! let rx = sim.attach_agent(b, Box::new(TcpSink::new(cfg, flow, a)));
//! sim.bind_flow(a, flow, tx);
//! sim.bind_flow(b, flow, rx);
//!
//! sim.run_until(SimTime::from_secs(5));
//! let sink = sim.agent_as::<TcpSink>(rx).unwrap();
//! assert!(sink.goodput_bytes() > 0);
//! # Ok::<(), pdos_sim::topology::BuildError>(())
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bank;
pub mod cc;
pub mod config;
pub mod rto;
pub mod rto_wheel;
pub mod sender;
pub mod sink;
pub mod stats;

/// Convenient re-exports.
pub mod prelude {
    pub use crate::bank::{SenderBank, SinkBank};
    pub use crate::cc::{parse_cc_key, AckSample, CcSpec, CcState, CongestionControl};
    pub use crate::config::{AimdParams, CcVariant, TcpConfig};
    pub use crate::rto::RttEstimator;
    pub use crate::sender::TcpSender;
    pub use crate::sink::TcpSink;
    pub use crate::stats::{CwndSample, SenderStats, SinkStats};
}
