//! Retransmission-timeout estimation (RFC 6298 style).

use pdos_sim::time::SimDuration;

/// Smoothed RTT / RTT-variance estimator with exponential backoff.
///
/// `RTO = SRTT + max(G, 4·RTTVAR)` clamped to `[min_rto, max_rto]`, where
/// the clock granularity `G` is taken as 1 ms. Until the first sample the
/// RTO is the conservative 3 s initial value (clamped the same way).
///
/// # Examples
///
/// ```
/// use pdos_tcp::rto::RttEstimator;
/// use pdos_sim::time::SimDuration;
///
/// let mut est = RttEstimator::new(SimDuration::from_millis(200),
///                                 SimDuration::from_secs(64));
/// est.on_sample(SimDuration::from_millis(100));
/// // srtt = 100ms, rttvar = 50ms -> rto = 300ms
/// assert_eq!(est.rto(), SimDuration::from_millis(300));
/// ```
#[derive(Debug, Clone)]
pub struct RttEstimator {
    srtt: Option<f64>,
    rttvar: f64,
    min_rto: SimDuration,
    max_rto: SimDuration,
    backoff: u32,
}

const ALPHA: f64 = 1.0 / 8.0;
const BETA: f64 = 1.0 / 4.0;
const GRANULARITY_S: f64 = 0.001;
const INITIAL_RTO_S: f64 = 3.0;

impl RttEstimator {
    /// Creates an estimator with the given RTO clamp.
    ///
    /// # Panics
    ///
    /// Panics if `min_rto > max_rto`.
    pub fn new(min_rto: SimDuration, max_rto: SimDuration) -> Self {
        assert!(min_rto <= max_rto, "min_rto must not exceed max_rto");
        RttEstimator {
            srtt: None,
            rttvar: 0.0,
            min_rto,
            max_rto,
            backoff: 0,
        }
    }

    /// Feeds one RTT measurement (never from a retransmitted segment —
    /// Karn's rule is the caller's responsibility). Clears any backoff.
    pub fn on_sample(&mut self, rtt: SimDuration) {
        let r = rtt.as_secs_f64();
        match self.srtt {
            None => {
                self.srtt = Some(r);
                self.rttvar = r / 2.0;
            }
            Some(srtt) => {
                self.rttvar = (1.0 - BETA) * self.rttvar + BETA * (srtt - r).abs();
                self.srtt = Some((1.0 - ALPHA) * srtt + ALPHA * r);
            }
        }
        self.backoff = 0;
    }

    /// Doubles the timeout after a retransmission timeout (capped so the
    /// effective RTO never exceeds `max_rto`).
    pub fn on_timeout(&mut self) {
        self.backoff = (self.backoff + 1).min(16);
    }

    /// The smoothed RTT, if at least one sample has been taken.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt.map(SimDuration::from_secs_f64)
    }

    /// The current retransmission timeout, including backoff.
    pub fn rto(&self) -> SimDuration {
        let base_s = match self.srtt {
            None => INITIAL_RTO_S,
            Some(srtt) => srtt + (4.0 * self.rttvar).max(GRANULARITY_S),
        };
        let clamped = base_s
            .max(self.min_rto.as_secs_f64())
            .min(self.max_rto.as_secs_f64());
        let backed_off = clamped * f64::from(1u32 << self.backoff.min(16));
        SimDuration::from_secs_f64(backed_off.min(self.max_rto.as_secs_f64()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est() -> RttEstimator {
        RttEstimator::new(SimDuration::from_millis(200), SimDuration::from_secs(64))
    }

    #[test]
    fn initial_rto_is_three_seconds() {
        assert_eq!(est().rto(), SimDuration::from_secs(3));
        assert_eq!(est().srtt(), None);
    }

    #[test]
    fn first_sample_sets_srtt_and_var() {
        let mut e = est();
        e.on_sample(SimDuration::from_millis(100));
        assert_eq!(e.srtt(), Some(SimDuration::from_millis(100)));
        assert_eq!(e.rto(), SimDuration::from_millis(300));
    }

    #[test]
    fn min_rto_floor_applies() {
        let mut e = RttEstimator::new(SimDuration::from_secs(1), SimDuration::from_secs(64));
        // Tiny, stable RTT: raw RTO would be ~ 12ms but the ns-2 floor is 1s.
        for _ in 0..50 {
            e.on_sample(SimDuration::from_millis(10));
        }
        assert_eq!(e.rto(), SimDuration::from_secs(1));
    }

    #[test]
    fn stable_samples_shrink_variance() {
        let mut e = est();
        for _ in 0..100 {
            e.on_sample(SimDuration::from_millis(100));
        }
        // Variance decays toward zero; RTO approaches srtt + G floor,
        // clamped below by min_rto = 200ms.
        assert_eq!(e.rto(), SimDuration::from_millis(200));
    }

    #[test]
    fn backoff_doubles_and_sample_resets() {
        let mut e = est();
        e.on_sample(SimDuration::from_millis(100)); // rto 300ms
        e.on_timeout();
        assert_eq!(e.rto(), SimDuration::from_millis(600));
        e.on_timeout();
        assert_eq!(e.rto(), SimDuration::from_millis(1200));
        e.on_sample(SimDuration::from_millis(100));
        // Backoff cleared; rttvar decayed 50 -> 37.5 ms, so 100 + 150 = 250.
        assert_eq!(e.rto(), SimDuration::from_millis(250));
    }

    #[test]
    fn backoff_saturates_at_max_rto() {
        let mut e = est();
        e.on_sample(SimDuration::from_millis(100));
        for _ in 0..40 {
            e.on_timeout();
        }
        assert_eq!(e.rto(), SimDuration::from_secs(64));
    }

    #[test]
    fn jittery_samples_keep_rto_above_srtt() {
        let mut e = est();
        for i in 0..100 {
            let ms = if i % 2 == 0 { 80 } else { 120 };
            e.on_sample(SimDuration::from_millis(ms));
        }
        let srtt = e.srtt().unwrap();
        assert!(e.rto() > srtt);
    }

    #[test]
    #[should_panic(expected = "min_rto")]
    fn inverted_clamp_panics() {
        RttEstimator::new(SimDuration::from_secs(2), SimDuration::from_secs(1));
    }

    proptest::proptest! {
        /// RTO always stays within the configured clamp.
        #[test]
        fn prop_rto_clamped(samples in proptest::collection::vec(1u64..2_000, 0..100),
                            timeouts in 0u32..8) {
            let mut e = est();
            for ms in samples {
                e.on_sample(SimDuration::from_millis(ms));
            }
            for _ in 0..timeouts {
                e.on_timeout();
            }
            let rto = e.rto();
            proptest::prop_assert!(rto >= SimDuration::from_millis(200));
            proptest::prop_assert!(rto <= SimDuration::from_secs(64));
        }
    }
}
