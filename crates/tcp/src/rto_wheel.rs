//! Bank-level retransmission-timer wheel: one engine timer for a whole
//! flow bank.
//!
//! A [`crate::bank::SenderBank`] re-arms a retransmission timeout on every
//! ACK. Done naively — one engine timer per flow, cancel + re-arm per ACK
//! — a million-flow bank pushes a million live timers through the engine
//! and pays timer churn on its hottest path. The bank's RTO is *fixed*,
//! which makes the deadlines monotone: a timer armed later always expires
//! no earlier than one armed before it. [`RtoWheel`] exploits that: arms
//! append to a FIFO of `(deadline, slot)` entries, re-arms invalidate the
//! old entry lazily with a per-slot epoch (no scan, no engine cancel), and
//! expiry pops the whole due prefix — the "bucket" of everything that has
//! hit its deadline — in arm order. The owning bank arms one engine timer
//! per distinct deadline instant, at the moment that deadline first
//! appears, so engine-side timer cost is O(1) per re-arm (nothing is ever
//! cancelled), a synchronized timeout storm expires as a single engine
//! event, and the timer's event key matches what a per-flow timer armed
//! at the same instant would carry — same-instant ordering is preserved
//! exactly.
//!
//! The contract, checked by the proptest battery below: for any sequence
//! of arms and re-arms with a fixed RTO, the wheel fires exactly the slots
//! a per-flow timer implementation would fire, at the same times and in
//! the same order (equal deadlines fire in arm order, matching the event
//! queue's arm-order tie-break for per-flow timers).

use pdos_sim::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// One queued expiry: the deadline, the flow slot, and the slot's arm
/// epoch at push time (stale when the slot has been re-armed since).
#[derive(Debug, Clone, Copy)]
struct Entry {
    deadline: SimTime,
    slot: u32,
    epoch: u32,
}

/// A monotone-deadline retransmission wheel for a dense bank of flows.
///
/// # Examples
///
/// ```
/// use pdos_tcp::rto_wheel::RtoWheel;
/// use pdos_sim::time::{SimDuration, SimTime};
///
/// let mut wheel = RtoWheel::new(SimDuration::from_millis(500), 4);
/// wheel.rearm(0, SimTime::ZERO);
/// wheel.rearm(1, SimTime::from_millis(100));
/// // Re-arming slot 0 invalidates its first deadline.
/// wheel.rearm(0, SimTime::from_millis(200));
/// assert_eq!(wheel.next_deadline(), Some(SimTime::from_millis(600)));
/// let mut fired = Vec::new();
/// wheel.expire(SimTime::from_millis(700), |slot| fired.push(slot));
/// assert_eq!(fired, vec![1, 0]);
/// assert_eq!(wheel.next_deadline(), None);
/// ```
#[derive(Debug, Clone)]
pub struct RtoWheel {
    rto: SimDuration,
    queue: VecDeque<Entry>,
    /// Arm epoch per slot; a queued entry is live iff its epoch matches.
    epoch: Vec<u32>,
    /// Whether the slot currently has a live (armed, unexpired) deadline.
    armed: Vec<bool>,
}

impl RtoWheel {
    /// A wheel for `n` slots with the bank's fixed retransmission
    /// timeout `rto`.
    pub fn new(rto: SimDuration, n: usize) -> Self {
        RtoWheel {
            rto,
            queue: VecDeque::new(),
            epoch: vec![0; n],
            armed: vec![false; n],
        }
    }

    /// The fixed timeout deadlines are derived from.
    pub fn rto(&self) -> SimDuration {
        self.rto
    }

    /// Number of queued entries, live and stale (diagnostics only).
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// (Re-)arms `slot` to expire at `now + rto`, replacing any
    /// outstanding deadline for the slot.
    ///
    /// # Panics
    ///
    /// Panics when `now + rto` precedes an already-queued deadline —
    /// callers must arm with a non-decreasing `now`, which every event
    /// handler does for free (the simulation clock never runs backwards).
    pub fn rearm(&mut self, slot: usize, now: SimTime) {
        let deadline = now + self.rto;
        if let Some(back) = self.queue.back() {
            assert!(
                back.deadline <= deadline,
                "RtoWheel deadlines must be monotone: {deadline:?} after {:?}",
                back.deadline
            );
        }
        self.epoch[slot] = self.epoch[slot].wrapping_add(1);
        self.armed[slot] = true;
        self.queue.push_back(Entry {
            deadline,
            slot: slot as u32,
            epoch: self.epoch[slot],
        });
    }

    /// The earliest live deadline, pruning stale front entries.
    /// `None` when nothing is armed.
    pub fn next_deadline(&mut self) -> Option<SimTime> {
        while let Some(front) = self.queue.front() {
            if self.epoch[front.slot as usize] == front.epoch {
                return Some(front.deadline);
            }
            self.queue.pop_front();
        }
        None
    }

    /// Pops every live entry due at or before `now` — the whole expired
    /// bucket — calling `fire(slot)` for each in arm order, exactly as
    /// per-flow timers would have fired. Expired slots are disarmed;
    /// `fire` may re-arm them (the classic RTO-backoff pattern) because
    /// the new deadline `now + rto` cannot precede the queue's tail.
    pub fn expire(&mut self, now: SimTime, mut fire: impl FnMut(usize)) {
        while let Some(front) = self.queue.front() {
            if front.deadline > now {
                break;
            }
            let entry = *front;
            self.queue.pop_front();
            let slot = entry.slot as usize;
            if self.epoch[slot] == entry.epoch {
                self.armed[slot] = false;
                fire(slot);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::test_runner::ProptestConfig;

    /// The reference model: one independent timer per slot, exactly what
    /// the bank did when every flow owned an engine timer. Firing drains
    /// all due timers ordered by (deadline, arm sequence) — the event
    /// queue's tie-break for timers scheduled at the same instant.
    #[derive(Debug, Clone)]
    struct PerFlowModel {
        rto: SimDuration,
        /// (deadline, arm seq) per armed slot.
        timers: Vec<Option<(SimTime, u64)>>,
        seq: u64,
    }

    impl PerFlowModel {
        fn new(rto: SimDuration, n: usize) -> Self {
            PerFlowModel {
                rto,
                timers: vec![None; n],
                seq: 0,
            }
        }

        fn rearm(&mut self, slot: usize, now: SimTime) {
            self.seq += 1;
            self.timers[slot] = Some((now + self.rto, self.seq));
        }

        fn next_deadline(&self) -> Option<SimTime> {
            self.timers.iter().flatten().map(|&(at, _)| at).min()
        }

        fn expire(&mut self, now: SimTime) -> Vec<usize> {
            let mut due: Vec<(SimTime, u64, usize)> = self
                .timers
                .iter()
                .enumerate()
                .filter_map(|(slot, t)| t.filter(|&(at, _)| at <= now).map(|(at, s)| (at, s, slot)))
                .collect();
            due.sort();
            let fired: Vec<usize> = due.iter().map(|&(_, _, slot)| slot).collect();
            for &slot in &fired {
                self.timers[slot] = None;
            }
            fired
        }
    }

    proptest::proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Drives wheel and model through the same randomized arm/expire
        /// schedule and demands identical fire order, times and pending
        /// deadlines throughout. Steps are weighted 3:1 toward re-arms —
        /// re-arms dominate real ACK traffic.
        #[test]
        fn wheel_matches_per_flow_timers(
            n in 1usize..24,
            rto_ms in 1u64..800,
            ops in proptest::collection::vec((0u32..4, 0usize..64, 0u64..900_000), 1..120),
        ) {
            let rto = SimDuration::from_millis(rto_ms);
            let mut wheel = RtoWheel::new(rto, n);
            let mut model = PerFlowModel::new(rto, n);
            let mut now = SimTime::ZERO;
            for (op, raw_slot, advance_us) in ops {
                now += SimDuration::from_micros(advance_us);
                if op < 3 {
                    // Arm or re-arm a random slot.
                    let slot = raw_slot % n;
                    wheel.rearm(slot, now);
                    model.rearm(slot, now);
                } else {
                    // Fire everything due, like the bank's on_timer.
                    let mut fired = Vec::new();
                    wheel.expire(now, |slot| fired.push(slot));
                    proptest::prop_assert_eq!(fired, model.expire(now), "fire order diverged");
                }
                proptest::prop_assert_eq!(
                    wheel.next_deadline(),
                    model.next_deadline(),
                    "pending deadline diverged"
                );
            }
            // Drain both completely: every armed slot must fire, once,
            // in the same order.
            let end = now + rto + rto;
            let mut fired = Vec::new();
            wheel.expire(end, |slot| fired.push(slot));
            proptest::prop_assert_eq!(fired, model.expire(end));
            proptest::prop_assert_eq!(wheel.next_deadline(), None);
        }
    }

    #[test]
    fn rearm_within_expire_callback_is_legal() {
        let mut wheel = RtoWheel::new(SimDuration::from_millis(100), 2);
        wheel.rearm(0, SimTime::ZERO);
        wheel.rearm(1, SimTime::ZERO);
        let now = SimTime::from_millis(100);
        let mut fired = Vec::new();
        let mut rearms: Vec<usize> = Vec::new();
        wheel.expire(now, |slot| fired.push(slot));
        for &slot in &fired {
            wheel.rearm(slot, now);
            rearms.push(slot);
        }
        assert_eq!(fired, vec![0, 1]);
        assert_eq!(wheel.next_deadline(), Some(SimTime::from_millis(200)));
        let mut again = Vec::new();
        wheel.expire(SimTime::from_millis(200), |slot| again.push(slot));
        assert_eq!(again, vec![0, 1]);
    }

    #[test]
    fn stale_entries_never_fire() {
        let mut wheel = RtoWheel::new(SimDuration::from_millis(50), 1);
        for step in 0..10 {
            wheel.rearm(0, SimTime::from_millis(step));
        }
        // Only the newest deadline is live.
        assert_eq!(wheel.next_deadline(), Some(SimTime::from_millis(59)));
        let mut fired = Vec::new();
        wheel.expire(SimTime::from_secs(1), |slot| fired.push(slot));
        assert_eq!(fired, vec![0], "re-armed slot must fire exactly once");
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn non_monotone_arm_panics() {
        let mut wheel = RtoWheel::new(SimDuration::from_millis(50), 2);
        wheel.rearm(0, SimTime::from_secs(1));
        wheel.rearm(1, SimTime::ZERO);
    }
}
