//! The TCP sender: a greedy (FTP-like) source driving a pluggable
//! congestion-control state machine (the paper's general `AIMD(a, b)`
//! by default; see [`crate::cc`] for the registry).
//!
//! The sender works at segment granularity like the ns-2 TCP agents the
//! paper simulates: sequence numbers count segments, the congestion window
//! is a (fractional) segment count, and ACKs carry the receiver's
//! next-expected segment number.

use crate::cc::{AckSample, CcState, CongestionControl};
use crate::config::{CcVariant, TcpConfig};
use crate::rto::RttEstimator;
use crate::stats::{CwndSample, SenderStats};
use pdos_sim::agent::{Agent, AgentCtx};
use pdos_sim::check::{Violation, ViolationKind};
use pdos_sim::node::NodeId;
use pdos_sim::packet::Ecn;
use pdos_sim::packet::{FlowId, Packet, PacketKind};
use pdos_sim::time::SimTime;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::any::Any;
use std::collections::BTreeSet;

/// A greedy TCP sender agent.
///
/// Attach it to a host node with the engine and bind the reverse flow so
/// ACKs reach it:
///
/// ```no_run
/// use pdos_sim::prelude::*;
/// use pdos_tcp::{sender::TcpSender, sink::TcpSink, config::TcpConfig};
///
/// # fn demo(sim: &mut Simulator, src: NodeId, dst: NodeId) {
/// let flow = FlowId::from_u32(1);
/// let cfg = TcpConfig::ns2_newreno();
/// let tx = sim.attach_agent(src, Box::new(TcpSender::new(cfg.clone(), flow, dst)));
/// let rx = sim.attach_agent(dst, Box::new(TcpSink::new(cfg, flow, src)));
/// sim.bind_flow(src, flow, tx);   // ACKs
/// sim.bind_flow(dst, flow, rx);   // data
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TcpSender {
    cfg: TcpConfig,
    flow: FlowId,
    dst: NodeId,

    // Window state (in segments), folded through the pluggable
    // congestion-control algorithm below.
    st: CcState,
    cc: Box<dyn CongestionControl>,
    /// Next never-before-sent segment.
    next_new: u64,
    /// All segments below this are cumulatively acknowledged.
    high_ack: u64,
    dup_acks: u32,
    in_fast_recovery: bool,
    /// Highest segment outstanding when fast recovery began; a cumulative
    /// ACK beyond it ends recovery (RFC 3782).
    recover: u64,
    /// When `Some(s)`, segments `[s, next_new)` are being re-sent after a
    /// timeout (go-back-N over the retransmission buffer).
    resend_from: Option<u64>,

    // Timing.
    est: RttEstimator,
    /// One segment currently being timed for an RTT sample: `(seq,
    /// sent_at)`. Karn's rule: never from a retransmission.
    timed: Option<(u64, SimTime)>,
    /// Timer generation for lazy cancellation.
    rto_gen: u64,

    /// New data sent at the moment of the last ECN reaction; a fresh echo
    /// only acts once the window has moved past it (once per RTT).
    ecn_recover: u64,
    /// Mice mode: sequence boundary of the current burst.
    burst_end: u64,
    /// Mice mode: idling between bursts.
    thinking: bool,
    /// Mice mode: resume-timer generation (lazy cancellation).
    resume_gen: u64,
    /// SACK scoreboard: segments above `high_ack` the receiver reported.
    sacked: BTreeSet<u64>,
    /// Holes already retransmitted during the current fast recovery.
    sack_retx_sent: BTreeSet<u64>,
    /// Deterministic stream for the randomized-RTO defense.
    rto_rng: SmallRng,

    stats: SenderStats,
    cwnd_trace: Vec<CwndSample>,
    done: bool,
}

impl TcpSender {
    /// Creates a sender for `flow`, sending to the host `dst`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`TcpConfig::validate`].
    pub fn new(cfg: TcpConfig, flow: FlowId, dst: NodeId) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid TCP configuration: {e}");
        }
        let est = RttEstimator::new(cfg.min_rto, cfg.max_rto);
        let rto_rng = SmallRng::seed_from_u64(
            cfg.rto_rand_seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(u64::from(flow.as_u32())),
        );
        TcpSender {
            st: CcState {
                cwnd: cfg.initial_cwnd,
                ssthresh: cfg.initial_ssthresh,
            },
            cc: cfg.cc.build(),
            next_new: 0,
            high_ack: 0,
            dup_acks: 0,
            in_fast_recovery: false,
            recover: 0,
            resend_from: None,
            est,
            timed: None,
            rto_gen: 0,
            ecn_recover: 0,
            burst_end: cfg.burst_segments.unwrap_or(u64::MAX),
            thinking: false,
            resume_gen: 0,
            sacked: BTreeSet::new(),
            sack_retx_sent: BTreeSet::new(),
            rto_rng,
            stats: SenderStats::default(),
            cwnd_trace: Vec::new(),
            done: false,
            cfg,
            flow,
            dst,
        }
    }

    /// The flow this sender drives.
    pub fn flow(&self) -> FlowId {
        self.flow
    }

    /// Current congestion window, in segments.
    pub fn cwnd(&self) -> f64 {
        self.st.cwnd
    }

    /// Current slow-start threshold, in segments.
    pub fn ssthresh(&self) -> f64 {
        self.st.ssthresh
    }

    /// Which congestion-control algorithm this sender runs.
    pub fn cc_kind(&self) -> crate::cc::CcSpec {
        self.cc.kind()
    }

    /// Whether the sender is inside fast recovery.
    pub fn in_fast_recovery(&self) -> bool {
        self.in_fast_recovery
    }

    /// Sender-side counters.
    pub fn stats(&self) -> &SenderStats {
        &self.stats
    }

    /// The recorded `(time, cwnd)` trajectory (empty unless
    /// [`TcpConfig::record_cwnd`] was set).
    pub fn cwnd_trace(&self) -> &[CwndSample] {
        &self.cwnd_trace
    }

    /// Whether a segment-limited transfer has completed.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Audits the sender's congestion-control invariants at `now`,
    /// returning any breaches (empty on a healthy sender).
    ///
    /// Checked: `cwnd` finite and within `[1, max_cwnd]` segments (the
    /// one-segment floor outside timeout), `ssthresh` finite and at or
    /// above the floor the active congestion-control algorithm contracts
    /// via [`CongestionControl::ssthresh_floor`] (two segments for the
    /// RFC 5681 family — not hard-coded AIMD halving, so CUBIC/BBR/DCTCP
    /// reductions don't trip false positives), the RFC 6298 RTO inside
    /// `[min_rto, max_rto]`, and no sequence regression
    /// (`next_new >= high_ack`).
    pub fn check_invariants(&self, now: SimTime) -> Vec<Violation> {
        let mut out = Vec::new();
        let entity = format!("tcp-sender/{}", self.flow);
        if !self.st.cwnd.is_finite() || !(1.0..=self.cfg.max_cwnd).contains(&self.st.cwnd) {
            out.push(Violation {
                at: now,
                entity: entity.clone(),
                kind: ViolationKind::TcpWindow,
                detail: format!(
                    "cwnd {} outside [1, {}] segments",
                    self.st.cwnd, self.cfg.max_cwnd
                ),
            });
        }
        let ssthresh_floor = self.cc.ssthresh_floor(&self.cfg);
        if !self.st.ssthresh.is_finite() || self.st.ssthresh < ssthresh_floor {
            out.push(Violation {
                at: now,
                entity: entity.clone(),
                kind: ViolationKind::TcpWindow,
                detail: format!(
                    "ssthresh {} below {} floor {ssthresh_floor}",
                    self.st.ssthresh,
                    self.cc.kind()
                ),
            });
        }
        if self.next_new < self.high_ack {
            out.push(Violation {
                at: now,
                entity: entity.clone(),
                kind: ViolationKind::TcpWindow,
                detail: format!(
                    "sequence regression: next_new {} < high_ack {}",
                    self.next_new, self.high_ack
                ),
            });
        }
        let rto = self.est.rto();
        if rto < self.cfg.min_rto || rto > self.cfg.max_rto {
            out.push(Violation {
                at: now,
                entity,
                kind: ViolationKind::TcpRto,
                detail: format!(
                    "rto {rto} outside [{}, {}]",
                    self.cfg.min_rto, self.cfg.max_rto
                ),
            });
        }
        out
    }

    /// Test hook: sets `cwnd` directly, bypassing the clamp in
    /// [`TcpSender::set_cwnd`], seeding a window fault for the checkers.
    #[doc(hidden)]
    pub fn corrupt_cwnd_for_test(&mut self, value: f64) {
        self.st.cwnd = value;
    }

    fn outstanding(&self) -> bool {
        self.next_new > self.high_ack
    }

    fn record_cwnd(&mut self, now: SimTime) {
        if self.cfg.record_cwnd {
            self.cwnd_trace.push(CwndSample {
                at: now,
                cwnd: self.st.cwnd,
            });
        }
    }

    fn set_cwnd(&mut self, value: f64, now: SimTime) {
        self.st.cwnd = value.clamp(1.0, self.cfg.max_cwnd);
        self.record_cwnd(now);
    }

    fn arm_rto(&mut self, ctx: &mut AgentCtx<'_>) {
        // Retire the previous RTO in the engine's timer wheel; the
        // generation bump below keeps stale fires harmless regardless.
        ctx.cancel_timer(self.rto_gen);
        self.rto_gen += 1;
        let mut rto = self.est.rto();
        if self.cfg.rto_rand_spread > 0.0 {
            // Yang et al.'s defense: stretch the timer by a uniform factor
            // so a shrew attacker cannot phase-lock onto retransmissions.
            let factor = 1.0 + self.cfg.rto_rand_spread * self.rto_rng.random::<f64>();
            rto = rto.mul_f64(factor);
        }
        ctx.timer_after(rto, self.rto_gen);
    }

    fn cancel_rto(&mut self, ctx: &mut AgentCtx<'_>) {
        ctx.cancel_timer(self.rto_gen);
        self.rto_gen += 1;
    }

    /// Resume-timer tokens live above this bit so they never collide with
    /// RTO generations.
    const RESUME_TOKEN_BASE: u64 = 1 << 60;

    fn send_segment(&mut self, seq: u64, retx: bool, ctx: &mut AgentCtx<'_>) {
        self.stats.segments_sent += 1;
        if retx {
            self.stats.retransmissions += 1;
            if let Some((timed_seq, _)) = self.timed {
                if timed_seq == seq {
                    // Karn: a retransmitted segment cannot be timed.
                    self.timed = None;
                }
            }
        } else if self.timed.is_none() && !self.in_fast_recovery && self.resend_from.is_none() {
            self.timed = Some((seq, ctx.now()));
        }
        let mut pkt = Packet::new(
            self.flow,
            ctx.node(),
            self.dst,
            self.cfg.segment_wire_size(),
            PacketKind::Data { seq, retx },
        );
        if self.cfg.ecn {
            pkt = pkt.with_ecn(Ecn::Capable);
        }
        ctx.send(pkt);
    }

    /// Sends as much as the window allows: pending timeout re-sends first,
    /// then new data.
    fn send_window(&mut self, ctx: &mut AgentCtx<'_>) {
        let usable_end = self.high_ack + self.st.cwnd.floor() as u64;
        loop {
            if let Some(s) = self.resend_from {
                if s < self.next_new && s < usable_end {
                    self.send_segment(s, true, ctx);
                    let next = s + 1;
                    self.resend_from = if next < self.next_new {
                        Some(next)
                    } else {
                        None
                    };
                    continue;
                }
                if s >= self.next_new {
                    self.resend_from = None;
                    continue;
                }
                break; // window exhausted while re-sending
            }
            if self.next_new >= usable_end {
                break;
            }
            if let Some(limit) = self.cfg.limit_segments {
                if self.next_new >= limit {
                    break;
                }
            }
            if self.thinking || self.next_new >= self.burst_end {
                break; // mice mode: current burst fully issued
            }
            let seq = self.next_new;
            self.next_new += 1;
            self.send_segment(seq, false, ctx);
        }
    }

    fn on_new_ack(&mut self, cum_seq: u64, ecn_echo: bool, ctx: &mut AgentCtx<'_>) {
        let newly = cum_seq - self.high_ack;
        // RTT sample (Karn-safe: `timed` is cleared on any retransmission
        // of the timed segment).
        let mut rtt_sample = None;
        if let Some((seq, sent_at)) = self.timed {
            if cum_seq > seq {
                let sample = ctx.now().saturating_since(sent_at);
                self.est.on_sample(sample);
                self.stats.rtt_samples += 1;
                self.timed = None;
                rtt_sample = Some(sample);
            }
        }
        self.high_ack = cum_seq;
        self.stats.segments_acked = cum_seq;
        if self.cfg.sack {
            self.sacked = self.sacked.split_off(&cum_seq);
            self.sack_retx_sent = self.sack_retx_sent.split_off(&cum_seq);
        }
        // Skip acked segments in a pending timeout re-send run.
        if let Some(s) = self.resend_from {
            if self.high_ack > s {
                self.resend_from = if self.high_ack < self.next_new {
                    Some(self.high_ack)
                } else {
                    None
                };
            }
        }

        if self.in_fast_recovery {
            if cum_seq > self.recover || self.cfg.variant == CcVariant::Reno {
                // Full ACK (or Reno, which exits on any new ACK): deflate.
                self.in_fast_recovery = false;
                self.dup_acks = 0;
                self.sack_retx_sent.clear();
                self.cc.on_recovery_exit(&mut self.st, &self.cfg, ctx.now());
                self.set_cwnd(self.st.ssthresh, ctx.now());
            } else {
                // NewReno partial ACK: retransmit the next hole, deflate by
                // the amount acked, add back one segment, restart the timer.
                self.send_segment(self.high_ack, true, ctx);
                self.set_cwnd((self.st.cwnd - newly as f64 + 1.0).max(1.0), ctx.now());
                self.send_window(ctx);
                self.arm_rto(ctx);
                return;
            }
        } else {
            self.dup_acks = 0;
            let ack = AckSample {
                newly,
                now: ctx.now(),
                rtt: rtt_sample,
                ecn_echo,
            };
            let grown = self.cc.on_ack(&self.st, &self.cfg, &ack);
            self.set_cwnd(grown, ctx.now());
        }

        if let Some(limit) = self.cfg.limit_segments {
            if self.high_ack >= limit {
                self.done = true;
                self.cancel_rto(ctx);
                return;
            }
        }

        // Mice mode: a fully acknowledged burst starts the think timer.
        if self.cfg.burst_segments.is_some() && !self.thinking && self.high_ack >= self.burst_end {
            self.thinking = true;
            self.stats.bursts_completed += 1;
            self.cancel_rto(ctx);
            self.resume_gen += 1;
            ctx.timer_after(
                self.cfg.think_time,
                Self::RESUME_TOKEN_BASE + self.resume_gen,
            );
            return;
        }

        self.send_window(ctx);
        if self.outstanding() {
            self.arm_rto(ctx);
        } else {
            self.cancel_rto(ctx);
        }
    }

    fn on_dup_ack(&mut self, ctx: &mut AgentCtx<'_>) {
        self.dup_acks += 1;
        if self.in_fast_recovery {
            // Window inflation: each further dup-ACK signals one segment
            // has left the network.
            self.set_cwnd(self.st.cwnd + 1.0, ctx.now());
            if self.cfg.sack {
                // RFC 6675-lite: spend the freed slot on the next hole the
                // scoreboard exposes, rather than on new data.
                if let Some(hole) = self.next_sack_hole() {
                    self.sack_retx_sent.insert(hole);
                    self.send_segment(hole, true, ctx);
                    return;
                }
            }
            self.send_window(ctx);
            return;
        }
        if self.cfg.limited_transmit
            && self.dup_acks < self.cfg.dupack_threshold
            && self.resend_from.is_none()
        {
            // RFC 3042: each of the first two dup-ACKs releases one new
            // segment beyond the window, keeping the ACK clock alive so a
            // small-window flow can still reach the FR threshold.
            let can_send = self
                .cfg
                .limit_segments
                .is_none_or(|limit| self.next_new < limit)
                && (self.cfg.burst_segments.is_none()
                    || (!self.thinking && self.next_new < self.burst_end));
            if can_send {
                let seq = self.next_new;
                self.next_new += 1;
                self.send_segment(seq, false, ctx);
            }
        }
        if self.dup_acks == self.cfg.dupack_threshold {
            self.stats.fast_recoveries += 1;
            self.cc.on_loss(&mut self.st, &self.cfg, ctx.now());
            self.timed = None; // the timed segment is likely the lost one
            match self.cfg.variant {
                CcVariant::Tahoe => {
                    // No fast recovery: collapse and slow-start.
                    self.set_cwnd(1.0, ctx.now());
                    self.send_segment(self.high_ack, true, ctx);
                    self.arm_rto(ctx);
                }
                CcVariant::Reno | CcVariant::NewReno => {
                    self.in_fast_recovery = true;
                    self.recover = self.next_new.saturating_sub(1);
                    self.send_segment(self.high_ack, true, ctx);
                    self.set_cwnd(
                        self.st.ssthresh + f64::from(self.cfg.dupack_threshold),
                        ctx.now(),
                    );
                    self.send_window(ctx);
                    self.arm_rto(ctx);
                }
            }
        }
    }

    /// RFC 3168 sender reaction: on a congestion echo, decrease the window
    /// multiplicatively — at most once per window of data, and not while
    /// loss recovery is already deflating it.
    fn on_ecn_echo(&mut self, ctx: &mut AgentCtx<'_>) {
        if self.in_fast_recovery || self.high_ack < self.ecn_recover {
            return;
        }
        self.stats.ecn_reactions += 1;
        let reduced = self.cc.on_ecn(&mut self.st, &self.cfg, ctx.now());
        self.set_cwnd(reduced, ctx.now());
        self.ecn_recover = self.next_new;
    }

    /// The lowest unacknowledged, un-SACKed, not-yet-retransmitted hole
    /// strictly above the cumulative point (which fast retransmit already
    /// resent), up to `recover`. A hole only qualifies when the receiver
    /// reported data *above* it — data with nothing SACKed beyond is just
    /// unreported in-flight traffic, and resending it would be spurious.
    fn next_sack_hole(&self) -> Option<u64> {
        let highest_sacked = *self.sacked.iter().next_back()?;
        (self.high_ack + 1..=self.recover.min(self.next_new.saturating_sub(1)))
            .take_while(|&seq| seq < highest_sacked)
            .find(|seq| !self.sacked.contains(seq) && !self.sack_retx_sent.contains(seq))
    }

    fn on_rto(&mut self, ctx: &mut AgentCtx<'_>) {
        if !self.outstanding() || self.done {
            return;
        }
        self.stats.timeouts += 1;
        self.est.on_timeout();
        self.cc.on_rto(&mut self.st, &self.cfg, ctx.now());
        self.in_fast_recovery = false;
        self.dup_acks = 0;
        self.timed = None;
        self.set_cwnd(1.0, ctx.now());
        self.sacked.clear(); // conservative: RFC 2018 reneging rule
        self.sack_retx_sent.clear();
        // Go-back-N: everything outstanding is queued for re-send.
        self.resend_from = Some(self.high_ack);
        self.send_window(ctx);
        self.arm_rto(ctx);
    }
}

impl Agent for TcpSender {
    fn start(&mut self, ctx: &mut AgentCtx<'_>) {
        self.record_cwnd(ctx.now());
        self.send_window(ctx);
        if self.outstanding() {
            self.arm_rto(ctx);
        }
    }

    fn on_packet(&mut self, packet: Packet, ctx: &mut AgentCtx<'_>) {
        if self.done {
            return;
        }
        let PacketKind::Ack { cum_seq } = packet.kind else {
            return; // not for us (a stray data/attack packet)
        };
        if self.cfg.ecn && packet.ecn_echo {
            self.on_ecn_echo(ctx);
        }
        if self.cfg.sack {
            for &(start, end) in packet.sack.ranges() {
                for seq in start..end.min(self.next_new) {
                    if seq >= self.high_ack {
                        self.sacked.insert(seq);
                    }
                }
            }
        }
        if cum_seq > self.high_ack {
            self.on_new_ack(cum_seq, self.cfg.ecn && packet.ecn_echo, ctx);
        } else if cum_seq == self.high_ack && self.outstanding() {
            self.on_dup_ack(ctx);
        }
        // cum_seq < high_ack: stale ACK, ignored.
    }

    fn on_timer(&mut self, token: u64, ctx: &mut AgentCtx<'_>) {
        if token >= Self::RESUME_TOKEN_BASE {
            if token == Self::RESUME_TOKEN_BASE + self.resume_gen && self.thinking {
                // Next request over the persistent connection: slow-start
                // restart after the idle period (RFC 2861).
                self.thinking = false;
                self.burst_end = self
                    .burst_end
                    .saturating_add(self.cfg.burst_segments.unwrap_or(u64::MAX));
                self.set_cwnd(self.cfg.initial_cwnd, ctx.now());
                self.send_window(ctx);
                if self.outstanding() {
                    self.arm_rto(ctx);
                }
            }
            return;
        }
        if token == self.rto_gen {
            self.on_rto(ctx);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn clone_box(&self) -> Option<Box<dyn Agent>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdos_sim::agent::Effect;
    use pdos_sim::time::SimDuration;
    use pdos_sim::units::Bytes;

    fn cfg() -> TcpConfig {
        TcpConfig {
            record_cwnd: true,
            ..TcpConfig::ns2_newreno()
        }
    }

    fn sender() -> TcpSender {
        TcpSender::new(cfg(), FlowId::from_u32(1), NodeId::from_u32(9))
    }

    fn ack(cum: u64) -> Packet {
        Packet::new(
            FlowId::from_u32(1),
            NodeId::from_u32(9),
            NodeId::from_u32(0),
            Bytes::from_u64(40),
            PacketKind::Ack { cum_seq: cum },
        )
    }

    /// Drives one callback and returns the produced effects.
    fn drive<F: FnOnce(&mut TcpSender, &mut AgentCtx<'_>)>(
        s: &mut TcpSender,
        now: SimTime,
        f: F,
    ) -> Vec<Effect> {
        let mut fx = Vec::new();
        let mut ctx = AgentCtx::new(now, NodeId::from_u32(0), &mut fx);
        f(s, &mut ctx);
        fx
    }

    fn data_seqs(fx: &[Effect]) -> Vec<(u64, bool)> {
        fx.iter()
            .filter_map(|e| match e {
                Effect::Send(p) => match p.kind {
                    PacketKind::Data { seq, retx } => Some((seq, retx)),
                    _ => None,
                },
                _ => None,
            })
            .collect()
    }

    #[test]
    fn invariants_hold_on_a_driven_sender_and_flag_corruption() {
        let mut s = sender();
        drive(&mut s, SimTime::ZERO, |s, ctx| s.start(ctx));
        drive(&mut s, SimTime::from_millis(100), |s, ctx| {
            s.on_packet(ack(2), ctx)
        });
        assert!(
            s.check_invariants(SimTime::from_millis(100)).is_empty(),
            "healthy sender flagged: {:?}",
            s.check_invariants(SimTime::from_millis(100))
        );
        // Seed a fault past the clamp: cwnd below the one-segment floor.
        s.corrupt_cwnd_for_test(0.25);
        let violations = s.check_invariants(SimTime::from_millis(200));
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert_eq!(
            violations[0].kind,
            pdos_sim::check::ViolationKind::TcpWindow
        );
        assert!(
            violations[0].entity.contains("tcp-sender"),
            "{violations:?}"
        );
        assert_eq!(violations[0].at, SimTime::from_millis(200));
        // Non-finite state is also caught.
        s.corrupt_cwnd_for_test(f64::NAN);
        assert_eq!(s.check_invariants(SimTime::ZERO).len(), 1);
    }

    #[test]
    fn start_sends_initial_window_and_arms_rto() {
        let mut s = sender();
        let fx = drive(&mut s, SimTime::ZERO, |s, ctx| s.start(ctx));
        assert_eq!(data_seqs(&fx), vec![(0, false), (1, false)]);
        assert!(fx
            .iter()
            .any(|e| matches!(e, Effect::TimerAt { token: 1, .. })));
    }

    #[test]
    fn slow_start_doubles_per_ack_round() {
        let mut s = sender();
        drive(&mut s, SimTime::ZERO, |s, ctx| s.start(ctx));
        // ACK both initial segments with one cumulative ACK: cwnd 2 -> 3.
        let fx = drive(&mut s, SimTime::from_millis(100), |s, ctx| {
            s.on_packet(ack(2), ctx)
        });
        assert_eq!(s.cwnd(), 3.0);
        // Window slides: usable = 2 + 3 = 5, already sent 2 -> 3 new.
        assert_eq!(data_seqs(&fx), vec![(2, false), (3, false), (4, false)]);
    }

    #[test]
    fn congestion_avoidance_grows_sublinearly() {
        let mut s = sender();
        drive(&mut s, SimTime::ZERO, |s, ctx| s.start(ctx));
        // Force CA by lowering ssthresh below cwnd.
        s.st.ssthresh = 1.0;
        drive(&mut s, SimTime::from_millis(100), |s, ctx| {
            s.on_packet(ack(2), ctx)
        });
        assert!(
            (s.cwnd() - 2.5).abs() < 1e-9,
            "2 + 1/2 = 2.5, got {}",
            s.cwnd()
        );
    }

    #[test]
    fn three_dup_acks_trigger_fast_retransmit() {
        let mut s = sender();
        drive(&mut s, SimTime::ZERO, |s, ctx| s.start(ctx));
        // Grow a bit: ack 2 segments.
        drive(&mut s, SimTime::from_millis(100), |s, ctx| {
            s.on_packet(ack(2), ctx)
        });
        let cwnd_before = s.cwnd(); // 3.0
                                    // Three duplicate ACKs at cum=2.
        for _ in 0..2 {
            let fx = drive(&mut s, SimTime::from_millis(110), |s, ctx| {
                s.on_packet(ack(2), ctx)
            });
            assert!(data_seqs(&fx).is_empty());
            assert!(!s.in_fast_recovery());
        }
        let fx = drive(&mut s, SimTime::from_millis(120), |s, ctx| {
            s.on_packet(ack(2), ctx)
        });
        assert!(s.in_fast_recovery());
        assert_eq!(s.stats().fast_recoveries, 1);
        // Lost segment (seq 2) retransmitted.
        assert!(data_seqs(&fx).contains(&(2, true)));
        assert_eq!(s.ssthresh(), (cwnd_before * 0.5).max(2.0));
        assert_eq!(s.cwnd(), s.ssthresh() + 3.0);
    }

    #[test]
    fn full_ack_exits_fast_recovery_with_deflated_window() {
        let mut s = sender();
        drive(&mut s, SimTime::ZERO, |s, ctx| s.start(ctx));
        drive(&mut s, SimTime::from_millis(100), |s, ctx| {
            s.on_packet(ack(2), ctx)
        }); // cwnd 3, sent up to seq 4
        for _ in 0..3 {
            drive(&mut s, SimTime::from_millis(110), |s, ctx| {
                s.on_packet(ack(2), ctx)
            });
        }
        assert!(s.in_fast_recovery());
        let ssthresh = s.ssthresh();
        // Cumulative ACK covering everything sent (recover = 4).
        drive(&mut s, SimTime::from_millis(200), |s, ctx| {
            s.on_packet(ack(5), ctx)
        });
        assert!(!s.in_fast_recovery());
        assert_eq!(s.cwnd(), ssthresh.max(1.0));
    }

    #[test]
    fn newreno_partial_ack_retransmits_next_hole() {
        let mut s = sender();
        drive(&mut s, SimTime::ZERO, |s, ctx| s.start(ctx));
        // Build a bigger window: ack up to 2 then 4.
        drive(&mut s, SimTime::from_millis(50), |s, ctx| {
            s.on_packet(ack(2), ctx)
        });
        drive(&mut s, SimTime::from_millis(100), |s, ctx| {
            s.on_packet(ack(4), ctx)
        }); // cwnd 4, sent up to seq 7
        for _ in 0..3 {
            drive(&mut s, SimTime::from_millis(110), |s, ctx| {
                s.on_packet(ack(4), ctx)
            });
        }
        assert!(s.in_fast_recovery());
        assert_eq!(s.recover, 7);
        // Partial ACK to 6 (recover is 7): stays in FR, retransmits seq 6.
        let fx = drive(&mut s, SimTime::from_millis(200), |s, ctx| {
            s.on_packet(ack(6), ctx)
        });
        assert!(s.in_fast_recovery());
        assert!(data_seqs(&fx).contains(&(6, true)));
        // Full ACK past recover ends it.
        drive(&mut s, SimTime::from_millis(300), |s, ctx| {
            s.on_packet(ack(8), ctx)
        });
        assert!(!s.in_fast_recovery());
    }

    #[test]
    fn reno_exits_recovery_on_any_new_ack() {
        let mut c = cfg();
        c.variant = CcVariant::Reno;
        let mut s = TcpSender::new(c, FlowId::from_u32(1), NodeId::from_u32(9));
        drive(&mut s, SimTime::ZERO, |s, ctx| s.start(ctx));
        drive(&mut s, SimTime::from_millis(50), |s, ctx| {
            s.on_packet(ack(2), ctx)
        });
        drive(&mut s, SimTime::from_millis(100), |s, ctx| {
            s.on_packet(ack(4), ctx)
        });
        for _ in 0..3 {
            drive(&mut s, SimTime::from_millis(110), |s, ctx| {
                s.on_packet(ack(4), ctx)
            });
        }
        assert!(s.in_fast_recovery());
        drive(&mut s, SimTime::from_millis(200), |s, ctx| {
            s.on_packet(ack(6), ctx)
        }); // partial, but Reno exits
        assert!(!s.in_fast_recovery());
    }

    #[test]
    fn tahoe_collapses_to_one_segment() {
        let mut c = cfg();
        c.variant = CcVariant::Tahoe;
        let mut s = TcpSender::new(c, FlowId::from_u32(1), NodeId::from_u32(9));
        drive(&mut s, SimTime::ZERO, |s, ctx| s.start(ctx));
        drive(&mut s, SimTime::from_millis(50), |s, ctx| {
            s.on_packet(ack(2), ctx)
        });
        for _ in 0..3 {
            drive(&mut s, SimTime::from_millis(60), |s, ctx| {
                s.on_packet(ack(2), ctx)
            });
        }
        assert!(!s.in_fast_recovery());
        assert_eq!(s.cwnd(), 1.0);
    }

    #[test]
    fn rto_collapses_window_and_resends_outstanding() {
        let mut s = sender();
        drive(&mut s, SimTime::ZERO, |s, ctx| s.start(ctx));
        drive(&mut s, SimTime::from_millis(50), |s, ctx| {
            s.on_packet(ack(2), ctx)
        }); // outstanding: seqs 2,3,4
        let gen = s.rto_gen;
        let fx = drive(&mut s, SimTime::from_secs(2), |s, ctx| s.on_timer(gen, ctx));
        assert_eq!(s.stats().timeouts, 1);
        assert_eq!(s.cwnd(), 1.0);
        // cwnd 1 allows exactly one re-send: the first unacked (seq 2).
        assert_eq!(data_seqs(&fx), vec![(2, true)]);
        // The rest follows as ACKs return.
        let fx = drive(&mut s, SimTime::from_secs(3), |s, ctx| {
            s.on_packet(ack(3), ctx)
        });
        let seqs = data_seqs(&fx);
        assert!(seqs.contains(&(3, true)), "go-back-N continues: {seqs:?}");
    }

    #[test]
    fn stale_timer_token_ignored() {
        let mut s = sender();
        drive(&mut s, SimTime::ZERO, |s, ctx| s.start(ctx));
        let stale = s.rto_gen - 1;
        drive(&mut s, SimTime::from_secs(2), |s, ctx| {
            s.on_timer(stale, ctx)
        });
        assert_eq!(s.stats().timeouts, 0);
    }

    #[test]
    fn limited_transfer_completes() {
        let mut c = cfg();
        c.limit_segments = Some(3);
        let mut s = TcpSender::new(c, FlowId::from_u32(1), NodeId::from_u32(9));
        let fx = drive(&mut s, SimTime::ZERO, |s, ctx| s.start(ctx));
        assert_eq!(data_seqs(&fx).len(), 2);
        drive(&mut s, SimTime::from_millis(50), |s, ctx| {
            s.on_packet(ack(2), ctx)
        });
        assert!(!s.is_done());
        drive(&mut s, SimTime::from_millis(100), |s, ctx| {
            s.on_packet(ack(3), ctx)
        });
        assert!(s.is_done());
        assert_eq!(s.stats().segments_acked, 3);
    }

    #[test]
    fn rtt_sample_taken_once_per_window() {
        let mut s = sender();
        drive(&mut s, SimTime::ZERO, |s, ctx| s.start(ctx));
        drive(&mut s, SimTime::from_millis(80), |s, ctx| {
            s.on_packet(ack(2), ctx)
        });
        assert_eq!(s.stats().rtt_samples, 1);
        assert_eq!(
            s.est.srtt(),
            Some(SimDuration::from_millis(80)),
            "sample equals send->ack delay"
        );
    }

    #[test]
    fn cwnd_trace_records_changes() {
        let mut s = sender();
        drive(&mut s, SimTime::ZERO, |s, ctx| s.start(ctx));
        drive(&mut s, SimTime::from_millis(50), |s, ctx| {
            s.on_packet(ack(2), ctx)
        });
        assert!(s.cwnd_trace().len() >= 2);
        assert_eq!(s.cwnd_trace()[0].cwnd, 2.0);
    }

    #[test]
    fn dup_acks_inflate_window_during_recovery() {
        let mut s = sender();
        drive(&mut s, SimTime::ZERO, |s, ctx| s.start(ctx));
        drive(&mut s, SimTime::from_millis(50), |s, ctx| {
            s.on_packet(ack(2), ctx)
        });
        for _ in 0..3 {
            drive(&mut s, SimTime::from_millis(60), |s, ctx| {
                s.on_packet(ack(2), ctx)
            });
        }
        let inflated = s.cwnd();
        drive(&mut s, SimTime::from_millis(70), |s, ctx| {
            s.on_packet(ack(2), ctx)
        });
        assert_eq!(s.cwnd(), inflated + 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid TCP configuration")]
    fn invalid_config_rejected() {
        let mut c = cfg();
        c.delayed_ack = 0;
        TcpSender::new(c, FlowId::from_u32(0), NodeId::from_u32(0));
    }

    #[test]
    fn ecn_echo_halves_window_once_per_round() {
        let mut c = cfg();
        c.ecn = true;
        let mut s = TcpSender::new(c, FlowId::from_u32(1), NodeId::from_u32(9));
        drive(&mut s, SimTime::ZERO, |s, ctx| s.start(ctx));
        drive(&mut s, SimTime::from_millis(50), |s, ctx| {
            s.on_packet(ack(2), ctx)
        }); // cwnd 3
        let before = s.cwnd();
        let echo_ack = ack(3).with_ecn_echo(true);
        drive(&mut s, SimTime::from_millis(60), |s, ctx| {
            s.on_packet(echo_ack, ctx)
        });
        assert_eq!(s.stats().ecn_reactions, 1);
        assert!(s.cwnd() <= before, "echo must not grow the window");
        assert!(
            (s.ssthresh() - (before * 0.5).max(2.0)).abs() < 1.01,
            "ssthresh near b*cwnd: {}",
            s.ssthresh()
        );
        // A second echo within the same window of data is ignored.
        let echo_again = ack(4).with_ecn_echo(true);
        drive(&mut s, SimTime::from_millis(70), |s, ctx| {
            s.on_packet(echo_again, ctx)
        });
        assert_eq!(s.stats().ecn_reactions, 1);
    }

    #[test]
    fn ecn_disabled_ignores_echo() {
        let mut s = sender();
        drive(&mut s, SimTime::ZERO, |s, ctx| s.start(ctx));
        let echo_ack = ack(2).with_ecn_echo(true);
        drive(&mut s, SimTime::from_millis(50), |s, ctx| {
            s.on_packet(echo_ack, ctx)
        });
        assert_eq!(s.stats().ecn_reactions, 0);
        assert_eq!(s.cwnd(), 3.0, "normal growth, no reaction");
    }

    #[test]
    fn ecn_capable_segments_marked_capable() {
        let mut c = cfg();
        c.ecn = true;
        let mut s = TcpSender::new(c, FlowId::from_u32(1), NodeId::from_u32(9));
        let fx = drive(&mut s, SimTime::ZERO, |s, ctx| s.start(ctx));
        for e in &fx {
            if let Effect::Send(p) = e {
                assert!(p.ecn.is_markable());
            }
        }
    }

    #[test]
    fn rto_randomization_stretches_the_timer_deterministically() {
        let timer_delay = |spread: f64, seed: u64| -> SimDuration {
            let mut c = cfg();
            c.rto_rand_spread = spread;
            c.rto_rand_seed = seed;
            let mut s = TcpSender::new(c, FlowId::from_u32(1), NodeId::from_u32(9));
            let fx = drive(&mut s, SimTime::ZERO, |s, ctx| s.start(ctx));
            fx.iter()
                .find_map(|e| match e {
                    Effect::TimerAt { at, .. } => Some(*at - SimTime::ZERO),
                    _ => None,
                })
                .expect("RTO armed at start")
        };
        let plain = timer_delay(0.0, 1);
        let stretched = timer_delay(1.0, 1);
        assert!(stretched >= plain, "{stretched} >= {plain}");
        assert!(
            stretched <= plain.mul_f64(2.0),
            "stretch bounded by 1 + spread"
        );
        // Deterministic per seed.
        assert_eq!(timer_delay(1.0, 7), timer_delay(1.0, 7));
    }

    #[test]
    fn limited_transmit_releases_segments_on_early_dupacks() {
        let mut c = cfg();
        c.limited_transmit = true;
        let mut s = TcpSender::new(c, FlowId::from_u32(1), NodeId::from_u32(9));
        drive(&mut s, SimTime::ZERO, |s, ctx| s.start(ctx)); // seqs 0,1 out
                                                             // First two dup-ACKs each release one new segment.
        let fx = drive(&mut s, SimTime::from_millis(50), |s, ctx| {
            s.on_packet(ack(0), ctx)
        });
        assert_eq!(data_seqs(&fx), vec![(2, false)]);
        let fx = drive(&mut s, SimTime::from_millis(60), |s, ctx| {
            s.on_packet(ack(0), ctx)
        });
        assert_eq!(data_seqs(&fx), vec![(3, false)]);
        // Third dup-ACK: fast retransmit of the hole, no extra new data
        // beyond the recovery machinery.
        let fx = drive(&mut s, SimTime::from_millis(70), |s, ctx| {
            s.on_packet(ack(0), ctx)
        });
        assert!(data_seqs(&fx).contains(&(0, true)));
        assert!(s.in_fast_recovery());
    }

    #[test]
    fn limited_transmit_off_by_default() {
        let mut s = sender();
        drive(&mut s, SimTime::ZERO, |s, ctx| s.start(ctx));
        let fx = drive(&mut s, SimTime::from_millis(50), |s, ctx| {
            s.on_packet(ack(0), ctx)
        });
        assert!(data_seqs(&fx).is_empty(), "no RFC 3042 without the flag");
    }

    #[test]
    fn mice_mode_bursts_and_thinks() {
        let mut c = cfg();
        c.burst_segments = Some(2);
        c.think_time = SimDuration::from_millis(300);
        let mut s = TcpSender::new(c, FlowId::from_u32(1), NodeId::from_u32(9));
        let fx = drive(&mut s, SimTime::ZERO, |s, ctx| s.start(ctx));
        // Initial window is 2 but the burst also caps at 2 segments.
        assert_eq!(data_seqs(&fx), vec![(0, false), (1, false)]);

        // Acking the burst starts the think timer, no new data.
        let fx = drive(&mut s, SimTime::from_millis(50), |s, ctx| {
            s.on_packet(ack(2), ctx)
        });
        assert!(data_seqs(&fx).is_empty(), "thinking: {fx:?}");
        assert_eq!(s.stats().bursts_completed, 1);
        let resume = fx
            .iter()
            .find_map(|e| match e {
                Effect::TimerAt { at, token } if *token >= TcpSender::RESUME_TOKEN_BASE => {
                    Some((*at, *token))
                }
                _ => None,
            })
            .expect("resume timer armed");
        assert_eq!(resume.0, SimTime::from_millis(350));

        // Resume: next burst of 2 begins, slow-start restarted.
        let fx = drive(&mut s, resume.0, |s, ctx| s.on_timer(resume.1, ctx));
        assert_eq!(data_seqs(&fx), vec![(2, false), (3, false)]);
        assert_eq!(s.cwnd(), 2.0, "cwnd restarts at initial after idle");
    }

    #[test]
    fn stale_resume_timer_ignored() {
        let mut c = cfg();
        c.burst_segments = Some(2);
        let mut s = TcpSender::new(c, FlowId::from_u32(1), NodeId::from_u32(9));
        drive(&mut s, SimTime::ZERO, |s, ctx| s.start(ctx));
        let fx = drive(&mut s, SimTime::from_millis(700), |s, ctx| {
            s.on_timer(TcpSender::RESUME_TOKEN_BASE + 99, ctx)
        });
        assert!(fx.is_empty());
    }

    #[test]
    fn sack_retransmits_exactly_the_holes() {
        let mut c = cfg();
        c.sack = true;
        c.initial_cwnd = 8.0;
        let mut s = TcpSender::new(c, FlowId::from_u32(1), NodeId::from_u32(9));
        drive(&mut s, SimTime::ZERO, |s, ctx| s.start(ctx)); // seqs 0..8 out
                                                             // Losses at 2 and 5; receiver has 0,1,3,4,6,7 and dup-acks cum=2
                                                             // with SACK blocks for [3,5) and [6,8).
        let sack = pdos_sim::packet::SackBlocks::from_ranges(&[(3, 5), (6, 8)]);
        for i in 0..5u64 {
            let p = ack(2).with_sack(sack);
            let fx = drive(&mut s, SimTime::from_millis(50 + i), |s, ctx| {
                s.on_packet(p, ctx)
            });
            let seqs = data_seqs(&fx);
            match i {
                // The first cum=2 is a *new* ACK: the window slides and
                // new data goes out.
                0 => assert!(seqs.iter().all(|&(_, retx)| !retx), "{seqs:?}"),
                // Two duplicates accumulate silently...
                1 | 2 => assert!(seqs.is_empty(), "{seqs:?}"),
                // ...the third triggers fast retransmit of the first hole,
                3 => assert!(
                    seqs.contains(&(2, true)),
                    "fast retransmit of first hole: {seqs:?}"
                ),
                // and the next dup-ACK's inflation slot goes to the second
                // hole the scoreboard exposes — not to new data.
                _ => assert_eq!(seqs, vec![(5, true)], "SACK targets the second hole"),
            }
        }
        // Both pre-loss holes (2 and 5) are now covered; 8..11 were sent
        // after the loss and have nothing SACKed above them, so they are
        // not (yet) holes — no spurious retransmissions.
        assert!(s.in_fast_recovery());
        assert!(s.next_sack_hole().is_none());
    }

    #[test]
    fn timeout_resend_still_covers_everything_after_reneging_guard() {
        let mut c = cfg();
        c.sack = true;
        let mut s = TcpSender::new(c, FlowId::from_u32(1), NodeId::from_u32(9));
        drive(&mut s, SimTime::ZERO, |s, ctx| s.start(ctx));
        // SACK info arrives, then an RTO fires: the scoreboard is cleared
        // (anti-reneging) and go-back-N covers every outstanding segment.
        let sack = pdos_sim::packet::SackBlocks::from_ranges(&[(1, 2)]);
        drive(&mut s, SimTime::from_millis(10), |s, ctx| {
            s.on_packet(ack(0).with_sack(sack), ctx)
        });
        assert!(!s.sacked.is_empty());
        let gen = s.rto_gen;
        let fx = drive(&mut s, SimTime::from_secs(2), |s, ctx| s.on_timer(gen, ctx));
        assert!(s.sacked.is_empty());
        assert!(data_seqs(&fx).contains(&(0, true)));
    }

    proptest::proptest! {
        /// State-machine fuzz: arbitrary interleavings of ACKs (any
        /// cumulative value), timer fires (any token) and time never panic
        /// and never violate the core invariants: cwnd in [1, max], the
        /// cumulative ACK point never regresses, and sequence numbers
        /// never go backwards.
        #[test]
        fn prop_sender_invariants_under_fuzz(
            ops in proptest::collection::vec((0u8..3, 0u64..64), 1..200)
        ) {
            let mut s = sender();
            let mut fx = Vec::new();
            {
                let mut ctx = AgentCtx::new(SimTime::ZERO, NodeId::from_u32(0), &mut fx);
                s.start(&mut ctx);
            }
            let mut now_ms = 0u64;
            let mut last_high_ack = 0u64;
            for (kind, arg) in ops {
                now_ms += 1 + arg % 40;
                let now = SimTime::from_millis(now_ms);
                let mut fx = Vec::new();
                let mut ctx = AgentCtx::new(now, NodeId::from_u32(0), &mut fx);
                match kind {
                    0 => s.on_packet(ack(arg), &mut ctx),
                    1 => s.on_timer(arg, &mut ctx),
                    _ => {
                        // An ACK with the ECN echo bit, valid or stale.
                        let p = ack(arg).with_ecn_echo(true);
                        s.on_packet(p, &mut ctx);
                    }
                }
                proptest::prop_assert!(s.cwnd() >= 1.0);
                proptest::prop_assert!(s.cwnd() <= s.cfg.max_cwnd);
                proptest::prop_assert!(s.high_ack >= last_high_ack);
                proptest::prop_assert!(s.next_new >= s.high_ack);
                last_high_ack = s.high_ack;
            }
        }
    }

    #[test]
    fn aimd_b_controls_decrease() {
        let mut c = cfg();
        c.aimd = crate::config::AimdParams::new(1.0, 0.875).unwrap();
        let mut s = TcpSender::new(c, FlowId::from_u32(1), NodeId::from_u32(9));
        drive(&mut s, SimTime::ZERO, |s, ctx| s.start(ctx));
        // Grow to cwnd 8.
        let mut cum = 0;
        for _ in 0..6 {
            cum += 1;
            drive(&mut s, SimTime::from_millis(50), |s, ctx| {
                s.on_packet(ack(cum), ctx)
            });
        }
        let w = s.cwnd();
        for _ in 0..3 {
            drive(&mut s, SimTime::from_millis(60), |s, ctx| {
                s.on_packet(ack(cum), ctx)
            });
        }
        assert!((s.ssthresh() - (w * 0.875).max(2.0)).abs() < 1e-9);
    }
}
