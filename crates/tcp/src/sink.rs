//! The TCP receiver: cumulative ACKs with a delayed-ACK policy.

use crate::config::TcpConfig;
use crate::stats::SinkStats;
use pdos_sim::agent::{Agent, AgentCtx};
use pdos_sim::node::NodeId;
use pdos_sim::packet::{FlowId, Packet, PacketKind, SackBlocks};
use std::any::Any;
use std::collections::BTreeSet;

/// A TCP sink that acknowledges every `d`-th in-order segment (RFC 2581
/// delayed ACKs), ACKs out-of-order arrivals immediately (producing the
/// duplicate ACKs fast retransmit relies on), and ACKs immediately when a
/// retransmission fills a gap.
#[derive(Debug, Clone)]
pub struct TcpSink {
    cfg: TcpConfig,
    flow: FlowId,
    /// The sender's node (where ACKs go).
    peer: NodeId,
    next_expected: u64,
    /// Out-of-order segments above `next_expected`.
    ooo: BTreeSet<u64>,
    /// In-order segments received since the last ACK.
    pending: u32,
    /// Delayed-ACK timer generation, for lazy cancellation.
    delack_gen: u64,
    /// A congestion-experienced mark was seen and not yet echoed.
    ece_pending: bool,
    /// Previous in-order arrival instant and gap, for jitter tracking.
    last_arrival: Option<pdos_sim::time::SimTime>,
    last_gap_nanos: Option<u64>,
    jitter_nanos: f64,
    stats: SinkStats,
}

impl TcpSink {
    /// Creates a sink for `flow`, acknowledging toward `peer`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`TcpConfig::validate`].
    pub fn new(cfg: TcpConfig, flow: FlowId, peer: NodeId) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid TCP configuration: {e}");
        }
        TcpSink {
            flow,
            peer,
            next_expected: 0,
            ooo: BTreeSet::new(),
            pending: 0,
            delack_gen: 0,
            ece_pending: false,
            last_arrival: None,
            last_gap_nanos: None,
            jitter_nanos: 0.0,
            stats: SinkStats::default(),
            cfg,
        }
    }

    /// Receiver-side counters.
    pub fn stats(&self) -> &SinkStats {
        &self.stats
    }

    /// In-order payload bytes delivered so far.
    pub fn goodput_bytes(&self) -> u64 {
        self.next_expected * self.cfg.mss.as_u64()
    }

    /// The next segment the receiver expects.
    pub fn next_expected(&self) -> u64 {
        self.next_expected
    }

    /// The smoothed inter-arrival jitter of in-order data (RFC 3550
    /// estimator), as a duration.
    pub fn jitter(&self) -> pdos_sim::time::SimDuration {
        pdos_sim::time::SimDuration::from_nanos(self.jitter_nanos as u64)
    }

    fn track_jitter(&mut self, now: pdos_sim::time::SimTime) {
        if let Some(prev) = self.last_arrival {
            let gap = now.saturating_since(prev).as_nanos();
            if let Some(last_gap) = self.last_gap_nanos {
                let d = gap.abs_diff(last_gap) as f64;
                self.jitter_nanos += (d - self.jitter_nanos) / 16.0;
                self.stats.jitter_nanos = self.jitter_nanos as u64;
            }
            self.last_gap_nanos = Some(gap);
        }
        self.last_arrival = Some(now);
    }

    /// The out-of-order buffer as `[start, end)` ranges, lowest first.
    fn ooo_ranges(&self) -> Vec<(u64, u64)> {
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        for &seq in &self.ooo {
            match ranges.last_mut() {
                Some((_, end)) if *end == seq => *end += 1,
                _ => ranges.push((seq, seq + 1)),
            }
        }
        ranges
    }

    fn send_ack(&mut self, ctx: &mut AgentCtx<'_>) {
        self.pending = 0;
        // Cancel any delayed-ACK timer in the wheel; the generation bump
        // keeps stale fires harmless regardless.
        ctx.cancel_timer(self.delack_gen);
        self.delack_gen += 1;
        self.stats.acks_sent += 1;
        let echo = std::mem::take(&mut self.ece_pending);
        let sack = if self.cfg.sack {
            SackBlocks::from_ranges(&self.ooo_ranges())
        } else {
            SackBlocks::EMPTY
        };
        ctx.send(
            Packet::new(
                self.flow,
                ctx.node(),
                self.peer,
                self.cfg.ack_size,
                PacketKind::Ack {
                    cum_seq: self.next_expected,
                },
            )
            .with_ecn_echo(echo)
            .with_sack(sack),
        );
    }

    fn refresh_stats(&mut self) {
        self.stats.next_expected = self.next_expected;
        self.stats.goodput =
            pdos_sim::units::Bytes::from_u64(self.next_expected * self.cfg.mss.as_u64());
    }
}

impl Agent for TcpSink {
    fn start(&mut self, _ctx: &mut AgentCtx<'_>) {}

    fn on_packet(&mut self, packet: Packet, ctx: &mut AgentCtx<'_>) {
        let PacketKind::Data { seq, .. } = packet.kind else {
            return;
        };
        self.stats.segments_received += 1;
        if packet.ecn.is_marked() {
            // RFC 3168 (one-shot simplification): echo the congestion mark
            // on the next ACK, and send that ACK promptly.
            self.ece_pending = true;
        }

        if seq == self.next_expected {
            // In-order arrival; may also drain the out-of-order buffer.
            self.track_jitter(ctx.now());
            self.next_expected += 1;
            let filled_gap = !self.ooo.is_empty();
            while self.ooo.remove(&self.next_expected) {
                self.next_expected += 1;
            }
            self.refresh_stats();
            if filled_gap {
                // A retransmission completed a hole: ACK immediately so the
                // sender sees the jump without waiting for the delack timer.
                self.send_ack(ctx);
            } else {
                self.pending += 1;
                if self.pending >= self.cfg.delayed_ack {
                    self.send_ack(ctx);
                } else {
                    ctx.cancel_timer(self.delack_gen);
                    self.delack_gen += 1;
                    ctx.timer_after(self.cfg.ack_delay, self.delack_gen);
                }
            }
        } else if seq > self.next_expected {
            // Out of order: buffer it and emit an immediate duplicate ACK.
            self.ooo.insert(seq);
            self.refresh_stats();
            self.send_ack(ctx);
        } else {
            // Below the window: a spurious retransmission. ACK immediately
            // so the sender resynchronizes.
            self.send_ack(ctx);
        }
        if self.ece_pending {
            // Congestion news must not sit behind the delayed-ACK timer.
            self.send_ack(ctx);
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut AgentCtx<'_>) {
        if token == self.delack_gen && self.pending > 0 {
            self.stats.delayed_ack_fires += 1;
            self.send_ack(ctx);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn clone_box(&self) -> Option<Box<dyn Agent>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdos_sim::agent::Effect;
    use pdos_sim::time::SimTime;
    use pdos_sim::units::Bytes;

    fn sink() -> TcpSink {
        TcpSink::new(
            TcpConfig::ns2_newreno(),
            FlowId::from_u32(1),
            NodeId::from_u32(0),
        )
    }

    fn data(seq: u64) -> Packet {
        Packet::new(
            FlowId::from_u32(1),
            NodeId::from_u32(0),
            NodeId::from_u32(9),
            Bytes::from_u64(1040),
            PacketKind::Data { seq, retx: false },
        )
    }

    fn drive<F: FnOnce(&mut TcpSink, &mut AgentCtx<'_>)>(
        s: &mut TcpSink,
        now: SimTime,
        f: F,
    ) -> Vec<Effect> {
        let mut fx = Vec::new();
        let mut ctx = AgentCtx::new(now, NodeId::from_u32(9), &mut fx);
        f(s, &mut ctx);
        fx
    }

    fn acks(fx: &[Effect]) -> Vec<u64> {
        fx.iter()
            .filter_map(|e| match e {
                Effect::Send(p) => match p.kind {
                    PacketKind::Ack { cum_seq } => Some(cum_seq),
                    _ => None,
                },
                _ => None,
            })
            .collect()
    }

    #[test]
    fn delayed_ack_every_second_segment() {
        let mut s = sink();
        let fx = drive(&mut s, SimTime::ZERO, |s, ctx| s.on_packet(data(0), ctx));
        assert!(acks(&fx).is_empty(), "first in-order segment is delayed");
        let fx = drive(&mut s, SimTime::from_millis(1), |s, ctx| {
            s.on_packet(data(1), ctx)
        });
        assert_eq!(acks(&fx), vec![2], "second segment flushes the ACK");
        assert_eq!(s.stats().acks_sent, 1);
    }

    #[test]
    fn delack_timer_flushes_lone_segment() {
        let mut s = sink();
        let fx = drive(&mut s, SimTime::ZERO, |s, ctx| s.on_packet(data(0), ctx));
        // Extract the armed timer token.
        let token = fx
            .iter()
            .find_map(|e| match e {
                Effect::TimerAt { token, .. } => Some(*token),
                _ => None,
            })
            .expect("a delayed-ACK timer must be armed");
        let fx = drive(&mut s, SimTime::from_millis(100), |s, ctx| {
            s.on_timer(token, ctx)
        });
        assert_eq!(acks(&fx), vec![1]);
    }

    #[test]
    fn stale_delack_timer_is_ignored() {
        let mut s = sink();
        drive(&mut s, SimTime::ZERO, |s, ctx| s.on_packet(data(0), ctx));
        drive(&mut s, SimTime::from_millis(1), |s, ctx| {
            s.on_packet(data(1), ctx)
        }); // ACK sent, timer cancelled via generation bump
        let fx = drive(&mut s, SimTime::from_millis(100), |s, ctx| {
            s.on_timer(1, ctx) // the old token
        });
        assert!(acks(&fx).is_empty());
    }

    #[test]
    fn out_of_order_triggers_immediate_dup_acks() {
        let mut s = sink();
        drive(&mut s, SimTime::ZERO, |s, ctx| s.on_packet(data(0), ctx));
        drive(&mut s, SimTime::ZERO, |s, ctx| s.on_packet(data(1), ctx)); // cum=2
                                                                          // seq 2 lost; 3, 4, 5 arrive.
        for seq in [3, 4, 5] {
            let fx = drive(&mut s, SimTime::from_millis(2), |s, ctx| {
                s.on_packet(data(seq), ctx)
            });
            assert_eq!(acks(&fx), vec![2], "dup ACK at the hole");
        }
        assert_eq!(s.next_expected(), 2);
    }

    #[test]
    fn retransmission_filling_gap_acks_past_buffered_data() {
        let mut s = sink();
        drive(&mut s, SimTime::ZERO, |s, ctx| s.on_packet(data(0), ctx));
        drive(&mut s, SimTime::ZERO, |s, ctx| s.on_packet(data(1), ctx));
        for seq in [3, 4, 5] {
            drive(&mut s, SimTime::from_millis(2), |s, ctx| {
                s.on_packet(data(seq), ctx)
            });
        }
        // The retransmitted seq 2 fills the hole: cum jumps to 6 at once.
        let fx = drive(&mut s, SimTime::from_millis(5), |s, ctx| {
            s.on_packet(data(2), ctx)
        });
        assert_eq!(acks(&fx), vec![6]);
        assert_eq!(s.goodput_bytes(), 6 * 1000);
    }

    #[test]
    fn below_window_duplicate_is_acked() {
        let mut s = sink();
        drive(&mut s, SimTime::ZERO, |s, ctx| s.on_packet(data(0), ctx));
        drive(&mut s, SimTime::ZERO, |s, ctx| s.on_packet(data(1), ctx));
        let fx = drive(&mut s, SimTime::from_millis(9), |s, ctx| {
            s.on_packet(data(0), ctx)
        });
        assert_eq!(acks(&fx), vec![2]);
    }

    #[test]
    fn non_data_packets_ignored() {
        let mut s = sink();
        let stray = Packet::new(
            FlowId::from_u32(1),
            NodeId::from_u32(0),
            NodeId::from_u32(9),
            Bytes::from_u64(40),
            PacketKind::Attack,
        );
        let fx = drive(&mut s, SimTime::ZERO, |s, ctx| s.on_packet(stray, ctx));
        assert!(fx.is_empty());
        assert_eq!(s.stats().segments_received, 0);
    }

    #[test]
    fn marked_segment_is_echoed_promptly_and_once() {
        let mut s = sink();
        let marked = data(0).with_ecn(pdos_sim::packet::Ecn::CongestionExperienced);
        let fx = drive(&mut s, SimTime::ZERO, |s, ctx| s.on_packet(marked, ctx));
        // The mark forces an immediate ACK carrying the echo.
        let echoes: Vec<bool> = fx
            .iter()
            .filter_map(|e| match e {
                Effect::Send(p) if p.kind.is_ack() => Some(p.ecn_echo),
                _ => None,
            })
            .collect();
        assert_eq!(echoes, vec![true]);
        // The next (unmarked) segments' ACK carries no echo. (The echo ACK
        // reset the delayed-ACK count, so two segments flush the next ACK.)
        drive(&mut s, SimTime::from_millis(1), |s, ctx| {
            s.on_packet(data(1), ctx)
        });
        let fx = drive(&mut s, SimTime::from_millis(2), |s, ctx| {
            s.on_packet(data(2), ctx)
        });
        let echoes: Vec<bool> = fx
            .iter()
            .filter_map(|e| match e {
                Effect::Send(p) if p.kind.is_ack() => Some(p.ecn_echo),
                _ => None,
            })
            .collect();
        assert_eq!(echoes, vec![false]);
    }

    #[test]
    fn sack_blocks_report_ooo_ranges() {
        let mut cfg = TcpConfig::ns2_newreno();
        cfg.sack = true;
        let mut s = TcpSink::new(cfg, FlowId::from_u32(1), NodeId::from_u32(0));
        drive(&mut s, SimTime::ZERO, |s, ctx| s.on_packet(data(0), ctx));
        drive(&mut s, SimTime::ZERO, |s, ctx| s.on_packet(data(1), ctx));
        // Holes at 2 and 5: receive 3, 4 and 6.
        for seq in [3, 4, 6] {
            drive(&mut s, SimTime::from_millis(2), |s, ctx| {
                s.on_packet(data(seq), ctx)
            });
        }
        let fx = drive(&mut s, SimTime::from_millis(3), |s, ctx| {
            s.on_packet(data(7), ctx)
        });
        let sack = fx
            .iter()
            .find_map(|e| match e {
                Effect::Send(p) if p.kind.is_ack() => Some(p.sack),
                _ => None,
            })
            .expect("dup ack sent");
        assert_eq!(sack.ranges(), &[(3, 5), (6, 8)]);
    }

    #[test]
    fn no_sack_blocks_without_the_flag() {
        let mut s = sink();
        drive(&mut s, SimTime::ZERO, |s, ctx| s.on_packet(data(0), ctx));
        let fx = drive(&mut s, SimTime::from_millis(2), |s, ctx| {
            s.on_packet(data(5), ctx)
        });
        let sack = fx
            .iter()
            .find_map(|e| match e {
                Effect::Send(p) if p.kind.is_ack() => Some(p.sack),
                _ => None,
            })
            .expect("dup ack sent");
        assert!(sack.is_empty());
    }

    #[test]
    fn jitter_tracks_interarrival_variability() {
        // Regular arrivals: jitter stays at zero.
        let mut s = sink();
        for (i, t) in (0..8u64).map(|i| (i, SimTime::from_millis(10 * i))) {
            drive(&mut s, t, |s, ctx| s.on_packet(data(i), ctx));
        }
        assert_eq!(s.jitter(), pdos_sim::time::SimDuration::ZERO);

        // Bursty arrivals (gap alternating 1 ms / 50 ms): jitter grows.
        let mut b = sink();
        let mut t = 0u64;
        for i in 0..20u64 {
            t += if i % 2 == 0 { 1 } else { 50 };
            drive(&mut b, SimTime::from_millis(t), |s, ctx| {
                s.on_packet(data(i), ctx)
            });
        }
        assert!(
            b.jitter() > pdos_sim::time::SimDuration::from_millis(10),
            "alternating gaps must register as jitter: {}",
            b.jitter()
        );
        assert!(b.stats().jitter_nanos > 0);
    }

    #[test]
    fn goodput_counts_only_in_order_payload() {
        let mut s = sink();
        drive(&mut s, SimTime::ZERO, |s, ctx| s.on_packet(data(0), ctx));
        drive(&mut s, SimTime::ZERO, |s, ctx| s.on_packet(data(5), ctx));
        assert_eq!(s.goodput_bytes(), 1000);
        assert_eq!(s.stats().segments_received, 2);
    }
}
