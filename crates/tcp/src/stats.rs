//! Per-flow statistics collected by the TCP agents.

use pdos_sim::time::SimTime;
use pdos_sim::units::Bytes;

/// Counters kept by a [`crate::sender::TcpSender`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SenderStats {
    /// Segments transmitted, including retransmissions.
    pub segments_sent: u64,
    /// Retransmitted segments (fast retransmit + timeout).
    pub retransmissions: u64,
    /// Cumulative-ACKed segments (highest in-order delivery at the
    /// receiver, in segments).
    pub segments_acked: u64,
    /// Retransmission timeouts taken.
    pub timeouts: u64,
    /// Fast-retransmit / fast-recovery episodes entered.
    pub fast_recoveries: u64,
    /// RTT samples taken.
    pub rtt_samples: u64,
    /// Window reductions taken in response to ECN congestion echoes.
    pub ecn_reactions: u64,
    /// Mice mode: request bursts fully delivered.
    pub bursts_completed: u64,
}

/// A `(time, cwnd)` trajectory sample (recorded when
/// [`crate::config::TcpConfig::record_cwnd`] is on).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CwndSample {
    /// When the window changed.
    pub at: SimTime,
    /// The congestion window, in segments.
    pub cwnd: f64,
}

/// Counters kept by a [`crate::sink::TcpSink`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SinkStats {
    /// Data segments that arrived (including duplicates/out-of-order).
    pub segments_received: u64,
    /// ACK packets emitted.
    pub acks_sent: u64,
    /// In-order goodput delivered to the "application", in bytes of
    /// payload.
    pub goodput: Bytes,
    /// The highest in-order segment boundary (next expected seq).
    pub next_expected: u64,
    /// RFC 3550-style smoothed inter-arrival jitter of in-order data, in
    /// nanoseconds (`J += (|D| − J)/16`). The paper notes PDoS raises
    /// jitter as well as cutting throughput (§2.3).
    pub jitter_nanos: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_zero() {
        let s = SenderStats::default();
        assert_eq!(s.segments_sent, 0);
        assert_eq!(s.timeouts, 0);
        let k = SinkStats::default();
        assert_eq!(k.goodput, Bytes::ZERO);
        assert_eq!(k.next_expected, 0);
    }

    #[test]
    fn cwnd_sample_is_copy() {
        let a = CwndSample {
            at: SimTime::from_millis(5),
            cwnd: 2.0,
        };
        let b = a;
        assert_eq!(a, b);
    }
}
