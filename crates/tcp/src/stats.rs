//! Per-flow statistics collected by the TCP agents.

use pdos_sim::time::SimTime;
use pdos_sim::units::Bytes;

/// Counters kept by a [`crate::sender::TcpSender`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SenderStats {
    /// Segments transmitted, including retransmissions.
    pub segments_sent: u64,
    /// Retransmitted segments (fast retransmit + timeout).
    pub retransmissions: u64,
    /// Cumulative-ACKed segments (highest in-order delivery at the
    /// receiver, in segments).
    pub segments_acked: u64,
    /// Retransmission timeouts taken.
    pub timeouts: u64,
    /// Fast-retransmit / fast-recovery episodes entered.
    pub fast_recoveries: u64,
    /// RTT samples taken.
    pub rtt_samples: u64,
    /// Window reductions taken in response to ECN congestion echoes.
    pub ecn_reactions: u64,
    /// Mice mode: request bursts fully delivered.
    pub bursts_completed: u64,
}

/// A `(time, cwnd)` trajectory sample (recorded when
/// [`crate::config::TcpConfig::record_cwnd`] is on).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CwndSample {
    /// When the window changed.
    pub at: SimTime,
    /// The congestion window, in segments.
    pub cwnd: f64,
}

/// Counters kept by a [`crate::sink::TcpSink`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SinkStats {
    /// Data segments that arrived (including duplicates/out-of-order).
    pub segments_received: u64,
    /// ACK packets emitted.
    pub acks_sent: u64,
    /// In-order goodput delivered to the "application", in bytes of
    /// payload.
    pub goodput: Bytes,
    /// The highest in-order segment boundary (next expected seq).
    pub next_expected: u64,
    /// RFC 3550-style smoothed inter-arrival jitter of in-order data, in
    /// nanoseconds (`J += (|D| − J)/16`). The paper notes PDoS raises
    /// jitter as well as cutting throughput (§2.3).
    pub jitter_nanos: u64,
    /// ACKs emitted by the delayed-ACK timer expiring (as opposed to the
    /// every-Nth-segment, duplicate, or gap-fill paths).
    pub delayed_ack_fires: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TcpConfig;
    use crate::sender::TcpSender;
    use crate::sink::TcpSink;
    use pdos_sim::agent::{Agent, AgentCtx, Effect};
    use pdos_sim::node::NodeId;
    use pdos_sim::packet::{FlowId, Packet, PacketKind};

    #[test]
    fn defaults_are_zero() {
        let s = SenderStats::default();
        assert_eq!(s.segments_sent, 0);
        assert_eq!(s.timeouts, 0);
        let k = SinkStats::default();
        assert_eq!(k.goodput, Bytes::ZERO);
        assert_eq!(k.next_expected, 0);
        assert_eq!(k.delayed_ack_fires, 0);
    }

    /// Drives one agent callback and returns the produced effects.
    fn drive<A: Agent, F: FnOnce(&mut A, &mut AgentCtx<'_>)>(
        agent: &mut A,
        now: SimTime,
        f: F,
    ) -> Vec<Effect> {
        let mut fx = Vec::new();
        let mut ctx = AgentCtx::new(now, NodeId::from_u32(0), &mut fx);
        f(agent, &mut ctx);
        fx
    }

    fn ack(cum: u64) -> Packet {
        Packet::new(
            FlowId::from_u32(1),
            NodeId::from_u32(9),
            NodeId::from_u32(0),
            Bytes::from_u64(40),
            PacketKind::Ack { cum_seq: cum },
        )
    }

    fn data(seq: u64) -> Packet {
        Packet::new(
            FlowId::from_u32(1),
            NodeId::from_u32(0),
            NodeId::from_u32(9),
            Bytes::from_u64(1040),
            PacketKind::Data { seq, retx: false },
        )
    }

    /// The token of the most recently armed timer in `fx`, if any.
    fn last_timer_token(fx: &[Effect]) -> Option<u64> {
        fx.iter().rev().find_map(|e| match e {
            Effect::TimerAt { token, .. } => Some(*token),
            _ => None,
        })
    }

    /// One scripted loss episode, counter by counter: slow start, a
    /// triple-duplicate-ACK fast retransmit, then a retransmission
    /// timeout. Every `SenderStats` field the episode touches is pinned.
    #[test]
    fn scripted_loss_pattern_pins_sender_counters() {
        let mut s = TcpSender::new(
            TcpConfig::ns2_newreno(),
            FlowId::from_u32(1),
            NodeId::from_u32(9),
        );
        // Start: initial window of 2 (seqs 0, 1).
        drive(&mut s, SimTime::ZERO, |s, ctx| s.start(ctx));
        assert_eq!(s.stats().segments_sent, 2);
        // Both segments ACKed: one RTT sample, cwnd 3, three new segments
        // (2, 3, 4) released.
        drive(&mut s, SimTime::from_millis(50), |s, ctx| {
            s.on_packet(ack(2), ctx)
        });
        assert_eq!(s.stats().segments_acked, 2);
        assert_eq!(s.stats().rtt_samples, 1);
        assert_eq!(s.stats().segments_sent, 5);
        // Segment 2 "lost": three duplicate ACKs trigger exactly one fast
        // retransmit and one fast-recovery episode.
        let mut fx_retx = Vec::new();
        for (i, t) in [60u64, 61, 62].iter().enumerate() {
            fx_retx = drive(&mut s, SimTime::from_millis(*t), |s, ctx| {
                s.on_packet(ack(2), ctx)
            });
            assert_eq!(s.stats().fast_recoveries, u64::from(i == 2));
        }
        assert_eq!(s.stats().retransmissions, 1);
        // 5 before the episode + the retransmit + 2 new segments released
        // by NewReno's window inflation during recovery.
        assert_eq!(s.stats().segments_sent, 8);
        assert!(s.in_fast_recovery());
        // The retransmission re-armed the RTO; let it expire. Exactly one
        // timeout, one more retransmission, no extra RTT samples.
        let token = last_timer_token(&fx_retx).expect("retransmit re-arms the RTO");
        drive(&mut s, SimTime::from_secs(5), |s, ctx| {
            s.on_timer(token, ctx)
        });
        assert_eq!(s.stats().timeouts, 1);
        assert_eq!(s.stats().retransmissions, 2);
        assert_eq!(s.stats().segments_sent, 9);
        assert_eq!(s.stats().rtt_samples, 1);
        assert_eq!(s.stats().segments_acked, 2);
    }

    /// A scripted loss-and-recovery arrival pattern at the sink, pinning
    /// goodput, ACK production and the delayed-ACK-timer counter.
    #[test]
    fn scripted_arrivals_pin_sink_goodput_and_delack_counters() {
        let cfg = TcpConfig::ns2_newreno();
        let mss = cfg.mss.as_u64();
        let mut k = TcpSink::new(cfg, FlowId::from_u32(1), NodeId::from_u32(0));
        // Segments 0 and 1 in order: the second arrival crosses the
        // delayed-ACK threshold and ACKs immediately.
        drive(&mut k, SimTime::from_millis(10), |k, ctx| {
            k.on_packet(data(0), ctx)
        });
        assert_eq!(k.stats().acks_sent, 0);
        drive(&mut k, SimTime::from_millis(12), |k, ctx| {
            k.on_packet(data(1), ctx)
        });
        assert_eq!(k.stats().acks_sent, 1);
        // Segment 2 lost; 3 arrives out of order: immediate duplicate
        // ACK, goodput frozen at 2 segments.
        drive(&mut k, SimTime::from_millis(14), |k, ctx| {
            k.on_packet(data(3), ctx)
        });
        assert_eq!(k.stats().acks_sent, 2);
        assert_eq!(k.next_expected(), 2);
        assert_eq!(k.goodput_bytes(), 2 * mss);
        // The retransmission of 2 fills the hole: immediate ACK, goodput
        // jumps over the buffered segment.
        drive(&mut k, SimTime::from_millis(200), |k, ctx| {
            k.on_packet(data(2), ctx)
        });
        assert_eq!(k.stats().acks_sent, 3);
        assert_eq!(k.next_expected(), 4);
        assert_eq!(k.goodput_bytes(), 4 * mss);
        assert_eq!(k.stats().goodput, Bytes::from_u64(4 * mss));
        assert_eq!(k.stats().delayed_ack_fires, 0);
        // Segment 4 alone arms the delayed-ACK timer; its expiry is the
        // only path that bumps `delayed_ack_fires`.
        let fx = drive(&mut k, SimTime::from_millis(300), |k, ctx| {
            k.on_packet(data(4), ctx)
        });
        assert_eq!(k.stats().acks_sent, 3, "below threshold: ACK deferred");
        let token = last_timer_token(&fx).expect("delayed-ACK timer armed");
        drive(&mut k, SimTime::from_millis(400), |k, ctx| {
            k.on_timer(token, ctx)
        });
        assert_eq!(k.stats().delayed_ack_fires, 1);
        assert_eq!(k.stats().acks_sent, 4);
        assert_eq!(k.stats().segments_received, 5);
        assert_eq!(k.goodput_bytes(), 5 * mss);
    }

    #[test]
    fn cwnd_sample_is_copy() {
        let a = CwndSample {
            at: SimTime::from_millis(5),
            cwnd: 2.0,
        };
        let b = a;
        assert_eq!(a, b);
    }
}
