//! The struct-of-arrays layout is an optimization, not a protocol: one
//! [`SenderBank`] serving N flows must produce *exactly* the traffic N
//! boxed per-flow agents produce, each with its own classically managed
//! engine timer (cancel + re-arm on every ACK — the per-flow semantics
//! the bank's `RtoWheel` was built to preserve) and its own point
//! binding. The scenario overlaps all flows on one undersized bottleneck
//! so the equivalence covers the interesting paths — queue drops,
//! dup-ACK go-back-N recovery, and RTO expiry through the bank's shared
//! wheel versus per-agent timers.
//!
//! The outcome counts are additionally pinned to hardcoded values: a
//! change that shifts them (in either layout) is a behavior change, not
//! a refactor, and must re-bless deliberately.

use pdos_sim::agent::{Agent, AgentCtx};
use pdos_sim::prelude::*;
use pdos_tcp::bank::{SenderBank, SinkBank};
use std::any::Any;

/// The boxed reference: one flow of the bank's exact AIMD/go-back-N
/// logic, with the retransmission deadline kept as its own engine timer
/// the classic way (cancel + re-arm per ACK).
#[derive(Debug, Clone)]
struct BoxedFlow {
    flow: FlowId,
    dst: NodeId,
    segment: Bytes,
    rto: SimDuration,
    cwnd_cap: u32,
    cwnd: u32,
    frac: u32,
    ssthresh: u32,
    next_seq: u32,
    high: u32,
    acked: u32,
    dup: u8,
    segments_sent: u64,
    retransmissions: u64,
    timeouts: u64,
}

impl BoxedFlow {
    fn new(flow: FlowId, dst: NodeId, segment: Bytes, rto: SimDuration) -> Self {
        let cwnd_cap = 8; // SenderBank::new's default cap
        BoxedFlow {
            flow,
            dst,
            segment,
            rto,
            cwnd_cap,
            cwnd: 1,
            frac: 0,
            ssthresh: cwnd_cap,
            next_seq: 0,
            high: 0,
            acked: 0,
            dup: 0,
            segments_sent: 0,
            retransmissions: 0,
            timeouts: 0,
        }
    }

    fn send_segment(&mut self, seq: u32, ctx: &mut AgentCtx<'_>) {
        let retx = seq < self.high;
        if retx {
            self.retransmissions += 1;
        } else {
            self.high = seq + 1;
        }
        ctx.send(Packet::new(
            self.flow,
            ctx.node(),
            self.dst,
            self.segment,
            PacketKind::Data {
                seq: u64::from(seq),
                retx,
            },
        ));
        self.segments_sent += 1;
    }

    fn fill_window(&mut self, ctx: &mut AgentCtx<'_>) {
        while self.next_seq - self.acked < self.cwnd {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.send_segment(seq, ctx);
        }
    }

    fn go_back_n(&mut self, ctx: &mut AgentCtx<'_>) {
        self.next_seq = self.acked;
        self.dup = 0;
        self.fill_window(ctx);
        self.rearm_rto(ctx);
    }

    fn rearm_rto(&mut self, ctx: &mut AgentCtx<'_>) {
        ctx.cancel_timer(0);
        ctx.timer_after(self.rto, 0);
    }

    fn grow(&mut self) {
        if self.cwnd >= self.cwnd_cap {
            return;
        }
        if self.cwnd < self.ssthresh {
            self.cwnd += 1;
        } else {
            self.frac += 1;
            if self.frac >= self.cwnd {
                self.frac = 0;
                self.cwnd += 1;
            }
        }
    }

    fn halve(&mut self) {
        self.ssthresh = (self.cwnd / 2).max(2);
        self.frac = 0;
    }
}

impl Agent for BoxedFlow {
    fn start(&mut self, ctx: &mut AgentCtx<'_>) {
        self.fill_window(ctx);
        self.rearm_rto(ctx);
    }

    fn on_packet(&mut self, packet: Packet, ctx: &mut AgentCtx<'_>) {
        let PacketKind::Ack { cum_seq } = packet.kind else {
            return;
        };
        let cum = cum_seq.min(u64::from(u32::MAX)) as u32;
        if cum > self.acked {
            self.acked = cum.min(self.next_seq);
            self.dup = 0;
            self.grow();
            self.fill_window(ctx);
            self.rearm_rto(ctx);
        } else if self.next_seq > self.acked {
            self.dup = self.dup.saturating_add(1);
            if self.dup == 3 {
                self.halve();
                self.cwnd = self.ssthresh;
                self.go_back_n(ctx);
            }
        }
    }

    fn on_timer(&mut self, _token: u64, ctx: &mut AgentCtx<'_>) {
        if self.next_seq > self.acked {
            self.timeouts += 1;
            self.halve();
            self.cwnd = 1;
            self.go_back_n(ctx);
        } else {
            self.rearm_rto(ctx);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn clone_box(&self) -> Option<Box<dyn Agent>> {
        Some(Box::new(self.clone()))
    }
}

const FLOWS: usize = 64;
const HORIZON_SECS: u64 = 3;

/// Everything observable about a run: sender-side, sink-side and
/// engine-side packet outcomes. Event counts are deliberately absent —
/// the layouts schedule different numbers of timer/start events while
/// producing identical traffic.
#[derive(Debug, PartialEq, Eq)]
struct Outcome {
    segments_sent: u64,
    retransmissions: u64,
    timeouts: u64,
    total_acked: u64,
    delivered_segments: u64,
    delivered: u64,
    queue_drops: u64,
}

/// One dumbbell with all flows overlapping at an undersized 10 Mbps
/// bottleneck: deep enough contention that slow start overruns the
/// queue, dup-ACK recovery kicks in, and straggler flows hit the RTO.
fn build_topology() -> (Simulator, NodeId, NodeId) {
    let mut t = TopologyBuilder::with_seed(7);
    let tx = t.add_host("tx");
    let r = t.add_router("r");
    let rx = t.add_host("rx");
    t.add_duplex_link(
        tx,
        r,
        BitsPerSec::from_mbps(1000.0),
        SimDuration::from_millis(1),
        QueueSpec::DropTail {
            capacity: FLOWS + 64,
        },
    );
    t.add_duplex_link(
        r,
        rx,
        BitsPerSec::from_mbps(10.0),
        SimDuration::from_millis(5),
        QueueSpec::DropTail { capacity: 20 },
    );
    let sim = t.build().expect("dumbbell builds");
    (sim, tx, rx)
}

fn run_soa() -> Outcome {
    let (mut sim, tx, rx) = build_topology();
    let segment = Bytes::from_u64(1000);
    let rto = SimDuration::from_millis(500);
    let tx_id = sim.attach_agent(
        tx,
        Box::new(SenderBank::new(
            FlowId::from_u32(0),
            FLOWS,
            rx,
            segment,
            rto,
        )),
    );
    let rx_id = sim.attach_agent(
        rx,
        Box::new(SinkBank::new(FlowId::from_u32(0), FLOWS, segment)),
    );
    sim.bind_flow_range(tx, 0..FLOWS as u32, tx_id);
    sim.bind_flow_range(rx, 0..FLOWS as u32, rx_id);
    sim.run_until(SimTime::from_secs(HORIZON_SECS));
    let bank = sim.agent_as::<SenderBank>(tx_id).expect("sender bank");
    let sink = sim.agent_as::<SinkBank>(rx_id).expect("sink bank");
    let stats = sim.stats();
    Outcome {
        segments_sent: bank.segments_sent(),
        retransmissions: bank.retransmissions(),
        timeouts: bank.timeouts(),
        total_acked: bank.total_acked(),
        delivered_segments: sink.delivered_segments(),
        delivered: stats.delivered,
        queue_drops: stats.queue_drops,
    }
}

fn run_boxed() -> Outcome {
    let (mut sim, tx, rx) = build_topology();
    let segment = Bytes::from_u64(1000);
    let rto = SimDuration::from_millis(500);
    let mut senders = Vec::new();
    let mut sinks = Vec::new();
    for f in 0..FLOWS as u32 {
        let flow = FlowId::from_u32(f);
        let tx_id = sim.attach_agent(tx, Box::new(BoxedFlow::new(flow, rx, segment, rto)));
        let rx_id = sim.attach_agent(rx, Box::new(SinkBank::new(flow, 1, segment)));
        sim.bind_flow(tx, flow, tx_id);
        sim.bind_flow(rx, flow, rx_id);
        senders.push(tx_id);
        sinks.push(rx_id);
    }
    sim.run_until(SimTime::from_secs(HORIZON_SECS));
    let stats = sim.stats();
    let mut out = Outcome {
        segments_sent: 0,
        retransmissions: 0,
        timeouts: 0,
        total_acked: 0,
        delivered_segments: 0,
        delivered: stats.delivered,
        queue_drops: stats.queue_drops,
    };
    for &id in &senders {
        let f = sim.agent_as::<BoxedFlow>(id).expect("boxed flow");
        out.segments_sent += f.segments_sent;
        out.retransmissions += f.retransmissions;
        out.timeouts += f.timeouts;
        out.total_acked += u64::from(f.acked);
    }
    for &id in &sinks {
        let sink = sim.agent_as::<SinkBank>(id).expect("sink bank");
        out.delivered_segments += sink.delivered_segments();
    }
    out
}

#[test]
#[ignore]
fn probe_first_divergence() {
    let build_soa = || {
        let (mut sim, tx, rx) = build_topology();
        let segment = Bytes::from_u64(1000);
        let rto = SimDuration::from_millis(500);
        let tx_id = sim.attach_agent(
            tx,
            Box::new(SenderBank::new(
                FlowId::from_u32(0),
                FLOWS,
                rx,
                segment,
                rto,
            )),
        );
        let rx_id = sim.attach_agent(
            rx,
            Box::new(SinkBank::new(FlowId::from_u32(0), FLOWS, segment)),
        );
        sim.bind_flow_range(tx, 0..FLOWS as u32, tx_id);
        sim.bind_flow_range(rx, 0..FLOWS as u32, rx_id);
        (sim, tx_id)
    };
    let build_boxed = || {
        let (mut sim, tx, rx) = build_topology();
        let segment = Bytes::from_u64(1000);
        let rto = SimDuration::from_millis(500);
        let mut senders = Vec::new();
        for f in 0..FLOWS as u32 {
            let flow = FlowId::from_u32(f);
            let tx_id = sim.attach_agent(tx, Box::new(BoxedFlow::new(flow, rx, segment, rto)));
            let rx_id = sim.attach_agent(rx, Box::new(SinkBank::new(flow, 1, segment)));
            sim.bind_flow(tx, flow, tx_id);
            sim.bind_flow(rx, flow, rx_id);
            senders.push(tx_id);
        }
        (sim, senders)
    };
    let (mut a, a_id) = build_soa();
    let (mut b, b_ids) = build_boxed();
    for step in 1..=1_082_000u64 {
        let t = SimTime::from_nanos(step * 1_000);
        a.run_until(t);
        b.run_until(t);
        let bank = a.agent_as::<SenderBank>(a_id).unwrap();
        for (slot, &id) in b_ids.iter().enumerate() {
            let f = b.agent_as::<BoxedFlow>(id).unwrap();
            let b_state = (
                f.cwnd, f.frac, f.ssthresh, f.next_seq, f.high, f.acked, f.dup,
            );
            let a_state = bank.slot_state(slot);
            if a_state != b_state {
                println!(
                    "state divergence at {} us slot {}: soa {:?} boxed {:?}",
                    step, slot, a_state, b_state
                );
                return;
            }
        }
        let a_sent = bank.segments_sent();
        let a_retx = bank.retransmissions();
        let a_to = bank.timeouts();
        let mut b_sent = 0u64;
        let mut b_retx = 0u64;
        let mut b_to = 0u64;
        for &id in &b_ids {
            let f = b.agent_as::<BoxedFlow>(id).unwrap();
            b_sent += f.segments_sent;
            b_retx += f.retransmissions;
            b_to += f.timeouts;
        }
        let (asx, bsx) = (a.stats(), b.stats());
        if (a_sent, a_retx, a_to, asx.delivered, asx.queue_drops)
            != (b_sent, b_retx, b_to, bsx.delivered, bsx.queue_drops)
        {
            println!(
                "first divergence at {} us: soa sent={a_sent} retx={a_retx} to={a_to} \
                 delivered={} drops={} | boxed sent={b_sent} retx={b_retx} to={b_to} \
                 delivered={} drops={}",
                step, asx.delivered, asx.queue_drops, bsx.delivered, bsx.queue_drops
            );
            return;
        }
    }
    println!("no divergence over 3000 ms");
}

#[test]
fn soa_bank_matches_boxed_per_flow_agents() {
    let soa = run_soa();
    let boxed = run_boxed();
    assert_eq!(soa, boxed, "SoA layout diverged from boxed per-flow agents");

    // The pinned outcome: loss, recovery and timeout paths all taken.
    assert!(soa.queue_drops > 0, "scenario must overrun the bottleneck");
    assert!(soa.retransmissions > 0, "scenario must recover from loss");
    assert!(soa.timeouts > 0, "scenario must exercise the RTO wheel");
    let pinned = Outcome {
        segments_sent: 4251,
        retransmissions: 1229,
        timeouts: 300,
        total_acked: 2881,
        delivered_segments: 2889,
        delivered: 7368,
        queue_drops: 522,
    };
    assert_eq!(soa, pinned, "outcome moved: re-bless deliberately");
}
