//! A defender's end-to-end workflow against a pulsing DoS attack:
//!
//!   1. notice the damage (goodput collapse) while the volume detector
//!      stays quiet;
//!   2. recover the attack's period from the traffic spectrum;
//!   3. invert the gain model: estimate C_psi and the attacker's risk
//!      appetite kappa from the observed operating point;
//!   4. deploy the ACC (pushback) penalty box at the bottleneck and
//!      measure the attack collapsing.
//!
//! Run with: `cargo run --release --example defender_playbook`

use pdos::prelude::*;
use pdos::sim::queue::AccQueue;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let warm = SimTime::from_secs(8);
    let end = SimTime::from_secs(38);
    let window_secs = 30.0;
    let bin = SimDuration::from_millis(50);

    // The hidden ground truth: a risk-neutral attacker optimizing against
    // 10 flows with 75 ms pulses at 30 Mbps.
    let spec = ScenarioSpec::ns2_dumbbell(10);
    let victims = spec.victims();
    let c_true = c_psi(&victims, 0.075, 30e6)?;
    let gamma = gamma_star(c_true, RiskPreference::NEUTRAL);
    let train = PulseTrain::from_gamma(
        SimDuration::from_secs_f64(0.075),
        BitsPerSec::from_bps(30e6),
        spec.bottleneck,
        gamma,
    )?;
    println!(
        "(ground truth: gamma* = {gamma:.3}, T_AIMD = {}, C_psi = {c_true:.3})\n",
        train.period()
    );

    // --- Step 1: measure the damage. -----------------------------------
    let exp = GainExperiment::new(spec.clone())
        .warmup(SimDuration::from_secs(8))
        .window(SimDuration::from_secs(30));
    let baseline = exp.baseline_bytes()?;

    let mut bench = spec.build()?;
    let trace = bench.trace_bottleneck(TraceFilter::All, bin);
    bench.attach_pulse_attack(train.clone(), warm, None);
    bench.run_until(warm);
    let g0 = bench.goodput_bytes();
    bench.run_until(end);
    let degradation = 1.0 - (bench.goodput_bytes() - g0) as f64 / baseline as f64;
    println!("step 1: goodput degradation = {:.0}%", degradation * 100.0);

    let first = (warm.as_nanos() / bin.as_nanos()) as usize;
    let bytes: Vec<u64> = bench.sim.trace(trace).bytes_per_bin()[first..].to_vec();
    let volume = RateDetector::conventional(15e6, bin.as_secs_f64()).run(&bytes);
    println!(
        "        volume detector: {} (EWMA utilization {:.2})",
        if volume.detected {
            "ALARM"
        } else {
            "quiet - the attack is stealthy"
        },
        volume.final_utilization
    );

    // --- Step 2: find the period spectrally. ----------------------------
    let series: Vec<f64> = bytes.iter().map(|&b| b as f64).collect();
    let spectral = SpectralDetector::new(3, 120, 12.0).sweep(&series);
    match spectral.dominant_period {
        Some(p) => println!(
            "step 2: spectral detector finds periodicity, T ~ {:.1} s (true {:.2} s)",
            p as f64 * bin.as_secs_f64(),
            train.period().as_secs_f64()
        ),
        None => println!("step 2: no periodicity found"),
    }

    // --- Step 3: invert the gain model. ---------------------------------
    // gamma observed = attack bytes / capacity; here the defender reads it
    // off the attack-only trace (in practice: anomaly volume estimate).
    let c_hat = c_psi_from_observation(gamma, degradation.clamp(0.0, 1.0));
    println!(
        "step 3: C_psi estimate {c_hat:.3} (true {c_true:.3}); attacker kappa estimate: {}",
        match infer_kappa(gamma, c_hat) {
            Some(k) => format!("{k:.2} (true 1.0 - risk-neutral)"),
            None => "inconsistent with an optimizing attacker".into(),
        }
    );
    println!(
        "        (measured damage includes timeout over-gain the FR model omits,\n         so C_psi and kappa read low - treat them as lower bounds)"
    );

    // --- Step 4: deploy ACC and measure again. --------------------------
    let mut defended_spec = spec.clone();
    defended_spec.queue = BottleneckQueue::AccRed;
    let def_exp = GainExperiment::new(defended_spec.clone())
        .warmup(SimDuration::from_secs(8))
        .window(SimDuration::from_secs(30));
    let def_baseline = def_exp.baseline_bytes()?;
    let mut defended = defended_spec.build()?;
    defended.attach_pulse_attack(train, warm, None);
    defended.run_until(warm);
    let d0 = defended.goodput_bytes();
    defended.run_until(end);
    let def_degradation = 1.0 - (defended.goodput_bytes() - d0) as f64 / def_baseline as f64;
    let acc = defended
        .sim
        .link(defended.bottleneck)
        .queue()
        .as_any()
        .downcast_ref::<AccQueue>()
        .expect("ACC bottleneck");
    println!(
        "step 4: with ACC deployed, degradation falls to {:.0}%; penalty box holds {:?} ({} pulses clipped)",
        def_degradation.max(0.0) * 100.0,
        acc.penalized_flows(),
        acc.limiter_drops()
    );
    let _ = window_secs;
    Ok(())
}
