//! The damage-vs-exposure trade-off, measured: sweep the normalized
//! attack rate gamma and run two real detectors against the bottleneck's
//! incoming traffic, next to the paper's abstract risk factor (1-gamma)^k.
//!
//! Run with: `cargo run --release --example detection_tradeoff`

use pdos::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = ScenarioSpec::ns2_dumbbell(10);
    let warmup = SimDuration::from_secs(5);
    let window = SimDuration::from_secs(30);
    let bin = SimDuration::from_millis(100);
    let (t_extent, r_attack) = (0.075, 30e6);

    let exp = GainExperiment::new(spec.clone())
        .warmup(warmup)
        .window(window);
    let baseline = exp.baseline_bytes()?;

    println!("== damage vs detection: 75 ms pulses at 30 Mbps ==\n");
    println!(
        "{:>6} {:>8} {:>10} {:>12} {:>12} {:>10}",
        "gamma", "G_sim", "risk(1-g)", "rate-alarm", "dtw-match", "class"
    );

    for gamma in [0.1, 0.25, 0.4, 0.6, 0.8, 0.95] {
        // Gain measurement (fresh bench).
        let point = exp.run_point(t_extent, r_attack, gamma, baseline)?;

        // Detector measurement: trace the bottleneck under the same attack.
        let train = PulseTrain::from_gamma(
            SimDuration::from_secs_f64(t_extent),
            BitsPerSec::from_bps(r_attack),
            spec.bottleneck,
            gamma,
        )?;
        let period_bins =
            (train.period().as_nanos() as f64 / bin.as_nanos() as f64).round() as usize;
        let mut bench = spec.build()?;
        let trace = bench.trace_bottleneck(TraceFilter::All, bin);
        bench.attach_pulse_attack(train, SimTime::ZERO + warmup, None);
        bench.run_until(SimTime::ZERO + warmup + window);
        let first = (warmup.as_nanos() / bin.as_nanos()) as usize;
        let bytes: Vec<u64> = bench.sim.trace(trace).bytes_per_bin()[first..].to_vec();

        // Detector 1: average-utilization (flooding) detector.
        let rate_report =
            RateDetector::conventional(spec.bottleneck.as_bps(), bin.as_secs_f64()).run(&bytes);

        // Detector 2: DTW pulse-shape matcher (when a full period fits).
        let dtw_detected = if period_bins >= 4 && period_bins <= bytes.len() {
            let on_bins =
                ((t_extent / bin.as_secs_f64()).round() as usize).clamp(1, period_bins - 1);
            let series: Vec<f64> = bytes.iter().map(|&b| b as f64).collect();
            DtwPulseDetector::new(period_bins, on_bins, 0.75, Some(period_bins / 2))
                .sweep(&series)
                .detected
        } else {
            false
        };

        println!(
            "{:>6.2} {:>8.3} {:>10.3} {:>12} {:>12} {:>10}",
            gamma,
            point.g_sim,
            RiskPreference::NEUTRAL.factor(gamma),
            if rate_report.detected {
                "ALARM"
            } else {
                "quiet"
            },
            if dtw_detected { "MATCH" } else { "miss" },
            point.class.to_string(),
        );
    }

    println!("\nReading: the volume detector only fires at high gamma (flood-like),");
    println!("while DTW sees the pulse *shape* at low duty cycles - the exposure");
    println!("the (1-gamma)^k risk factor abstracts.");
    Ok(())
}
