//! Optimal attack parameters for the three attacker profiles of Sec. 3
//! (risk-averse / neutral / loving), solved in closed form and verified
//! in simulation.
//!
//! Run with: `cargo run --release --example optimal_attack`

use pdos::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = ScenarioSpec::ns2_dumbbell(25);
    let victims = spec.victims();
    let (t_extent, r_attack) = (0.075, 30e6);
    let c = c_psi(&victims, t_extent, r_attack)?;

    println!("== Optimal PDoS parameters (25 flows, T_extent=75ms, R_attack=30Mbps) ==");
    println!("damage constant C_psi = {c:.4}\n");
    println!(
        "{:<22} {:>8} {:>8} {:>10} {:>8}",
        "attacker", "gamma*", "mu*", "period(s)", "gain"
    );

    for (label, kappa) in [
        ("risk-loving (k=0.3)", 0.3),
        ("risk-neutral (k=1)", 1.0),
        ("risk-averse (k=4)", 4.0),
    ] {
        let risk = RiskPreference::new(kappa).map_err(ParamErrorWrap)?;
        let sol = solve(&victims, t_extent, r_attack, risk)?;
        println!(
            "{label:<22} {:>8.3} {:>8.2} {:>10.3} {:>8.3}",
            sol.gamma_star, sol.mu_star, sol.period, sol.gain
        );
    }

    // Corollary 3 sanity: the neutral optimum is sqrt(C_psi).
    println!(
        "\nCorollary 3 check: gamma* = sqrt(C_psi) = {:.3}",
        c.sqrt()
    );

    // Verify in simulation that the neutral gamma* beats its neighbours.
    let exp = GainExperiment::new(spec)
        .warmup(SimDuration::from_secs(10))
        .window(SimDuration::from_secs(30));
    let baseline = exp.baseline_bytes()?;
    let gs = gamma_star(c, RiskPreference::NEUTRAL);
    println!("\nsimulated gain around the predicted optimum gamma* = {gs:.3}:");
    for gamma in [0.5 * gs, gs, (2.0 * gs).min(0.95)] {
        let p = exp.run_point(t_extent, r_attack, gamma, baseline)?;
        println!(
            "  gamma = {gamma:.3}: G_sim = {:.3} (analytic {:.3}, {})",
            p.g_sim, p.g_analytic, p.class
        );
    }
    Ok(())
}

/// RiskPreference::new returns Result<_, String>; adapt it to Box<dyn Error>.
#[derive(Debug)]
struct ParamErrorWrap(String);
impl std::fmt::Display for ParamErrorWrap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}
impl std::error::Error for ParamErrorWrap {}
