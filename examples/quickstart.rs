//! Quickstart: measure what one pulsing attack does to a population of
//! TCP flows, and compare with the paper's analytical prediction.
//!
//! Run with: `cargo run --release --example quickstart`

use pdos::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's ns-2 scene (Fig. 5): 15 NewReno flows with RTTs spread
    // over 20-460 ms, sharing a 15 Mbps RED bottleneck.
    let spec = ScenarioSpec::ns2_dumbbell(15);
    let exp = GainExperiment::new(spec)
        .warmup(SimDuration::from_secs(10))
        .window(SimDuration::from_secs(30));

    println!("== PDoS quickstart: 15 flows, 15 Mbps RED bottleneck ==\n");

    // 1. Baseline: without an attack, TCP fills the bottleneck (Lemma 1).
    let baseline = exp.baseline_bytes()?;
    let baseline_mbps = baseline as f64 * 8.0 / 30.0 / 1e6;
    println!("baseline goodput : {baseline_mbps:.2} Mbps (capacity 15 Mbps)");

    // 2. One pulsing attack: 75 ms pulses at 30 Mbps with normalized
    //    average rate gamma = 0.3, i.e. the attack averages only
    //    0.3 x 15 Mbps = 4.5 Mbps.
    let (t_extent, r_attack, gamma) = (0.075, 30e6, 0.3);
    let point = exp.run_point(t_extent, r_attack, gamma, baseline)?;

    println!(
        "\nattack: 75 ms pulses at 30 Mbps, every {:.2} s (gamma = {gamma})",
        point.t_aimd
    );
    println!(
        "  analytical degradation (Prop. 2) : {:5.1}%",
        point.degradation_analytic * 100.0
    );
    println!(
        "  measured degradation             : {:5.1}%",
        point.degradation_sim * 100.0
    );
    println!(
        "  analytical gain (Eq. 5, kappa=1) : {:5.3}",
        point.g_analytic
    );
    println!("  measured gain                    : {:5.3}", point.g_sim);
    println!(
        "  victim timeouts / fast recoveries: {} / {}",
        point.timeouts, point.fast_recoveries
    );
    println!("  classification (Sec. 4.1.1)      : {}", point.class);

    // 3. The headline: the attacker spends ~3.5x less than the bottleneck
    //    capacity, yet removes most of the TCP throughput.
    let avg_attack_mbps = gamma * 15.0;
    println!(
        "\nAt an average attack rate of only {avg_attack_mbps:.1} Mbps, TCP lost {:.0}% of its throughput.",
        point.degradation_sim * 100.0
    );
    println!("This is the damage/stealth trade-off the gain model optimizes.");
    Ok(())
}
