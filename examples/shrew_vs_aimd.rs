//! Shrew (timeout-synchronized) attacks vs AIMD-based attacks, and why
//! randomizing the minimum RTO defends only against the former (Sec. 1.1,
//! Sec. 4.1.3).
//!
//! Run with: `cargo run --release --example shrew_vs_aimd`

use pdos::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = ScenarioSpec::ns2_dumbbell(10);
    let min_rto = spec.tcp.min_rto;
    let exp = GainExperiment::new(spec)
        .warmup(SimDuration::from_secs(5))
        .window(SimDuration::from_secs(30));
    let baseline = exp.baseline_bytes()?;

    let (t_extent, r_attack) = (0.05, 50e6);
    // gamma chosen so the period lands exactly on the shrew harmonic
    // T_AIMD = min_rto = 1 s ... and a control point off the harmonic.
    let gamma_shrew = r_attack * t_extent / (15e6 * min_rto.as_secs_f64());
    let gamma_off = gamma_shrew / 0.7; // T_AIMD = 0.7 s: off-harmonic

    println!("== shrew point vs off-harmonic AIMD point (same pulse shape) ==\n");
    for (label, gamma) in [
        ("shrew  (T=1.0s)", gamma_shrew),
        ("aimd   (T=0.7s)", gamma_off),
    ] {
        let p = exp.run_point(t_extent, r_attack, gamma, baseline)?;
        println!(
            "{label}: gamma={gamma:.3} G_sim={:.3} G_analytic={:.3} timeouts={} FRs={} shrew={:?}",
            p.g_sim, p.g_analytic, p.timeouts, p.fast_recoveries, p.shrew
        );
    }
    println!("\nAt the shrew point the analysis under-estimates the gain: victims are");
    println!("pinned in timeout, not fast recovery (the Fig. 10 'O' markers).");

    // The randomized-RTO defense: helps against the shrew lock, not AIMD.
    println!("\n== randomized minimum-RTO defense (Yang et al.) ==\n");
    let t_aimd = min_rto.as_secs_f64();
    for spread in [0.0, 0.3, 1.0, 2.0] {
        let policy = RandomizedRtoPolicy::new(min_rto.as_secs_f64(), spread)
            .expect("valid policy parameters");
        println!(
            "spread {spread:.1}s: P(retransmission lands in a pulse) = {:.2}  defends AIMD attack: {}",
            policy.shrew_hit_probability(t_aimd, t_extent),
            policy.defends_aimd_attack()
        );
    }
    println!("\nRandomization breaks the timeout lock (hit probability falls toward the");
    println!("duty cycle) but the AIMD-based attack never referenced the RTO at all.");
    Ok(())
}
