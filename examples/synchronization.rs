//! The quasi-global synchronization phenomenon of Sec. 2.3 / Fig. 3:
//! a pulsing attack imposes its own period on the aggregate incoming
//! traffic at the bottleneck router.
//!
//! Run with: `cargo run --release --example synchronization`

use pdos::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Fig. 3(a)'s attack: 50 ms pulses at 100 Mbps, every 2 s, against a
    // dumbbell of TCP flows (scaled to 12 flows for a quick run).
    let spec = ScenarioSpec::ns2_dumbbell(12);
    let train = PulseTrain::new(
        SimDuration::from_millis(50),
        BitsPerSec::from_mbps(100.0),
        SimDuration::from_millis(1950),
    )?;
    println!("attack period T_AIMD = {}", train.period());

    let result = SyncExperiment::new(spec)
        .warmup(SimDuration::from_secs(5))
        .window(SimDuration::from_secs(40))
        .run(train)?;

    println!("\nnormalized incoming traffic (PAA, one char per segment):");
    render_ascii(&result.paa_series);

    println!("\npinnacles counted          : {}", result.peaks);
    match result.period_from_peaks {
        Some(p) => println!(
            "period from peak count     : {:.2} s  ({} s window / {} peaks)",
            p, result.window_secs, result.peaks
        ),
        None => println!("period from peak count     : none detected"),
    }
    if let Some(p) = result.period_from_autocorr {
        println!("period from autocorrelation: {p:.2} s");
    }
    println!(
        "expected (= attack period) : {:.2} s",
        result.expected_period
    );
    Ok(())
}

/// Renders a series as rows of a small ASCII strip chart.
fn render_ascii(series: &[f64]) {
    const GLYPHS: &[u8] = b" .:-=+*#%@";
    let (lo, hi) = series
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &x| (lo.min(x), hi.max(x)));
    let span = (hi - lo).max(1e-9);
    let line: String = series
        .iter()
        .map(|&x| {
            let idx = (((x - lo) / span) * (GLYPHS.len() - 1) as f64).round() as usize;
            GLYPHS[idx.min(GLYPHS.len() - 1)] as char
        })
        .collect();
    for chunk in line.as_bytes().chunks(80) {
        println!("  {}", std::str::from_utf8(chunk).unwrap());
    }
}
