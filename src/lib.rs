//! # pdos — a simulation laboratory for pulsing denial-of-service research
//!
//! This facade crate re-exports the whole PDoS-lab workspace, a
//! from-scratch Rust reproduction of Luo & Chang, *"Optimizing the Pulsing
//! Denial-of-Service Attacks"* (DSN 2005). Everything runs inside a
//! deterministic discrete-event simulator; nothing touches a real network.
//! The intended audience is defenders and researchers: the analytical
//! model predicts how much damage a pulsing attacker can inflict at a
//! given average-rate budget, and the simulator + detectors measure it.
//!
//! | Crate | Role |
//! |---|---|
//! | [`sim`] | discrete-event packet simulator (links, DropTail/RED, routing) |
//! | [`tcp`] | general AIMD(a,b) TCP agents (NewReno/Reno/Tahoe) |
//! | [`attack`] | pulse-train / flooding workload generators, shrew helpers |
//! | [`analysis`] | the paper's closed-form model and optimizer (the core) |
//! | [`detect`] | rate / DTW detectors, randomized-RTO defense |
//! | [`scenarios`] | the paper's topologies and measurement protocols |
//!
//! ## Quickstart
//!
//! ```no_run
//! use pdos::prelude::*;
//!
//! // The paper's ns-2 scene: 15 TCP flows over a 15 Mbps RED bottleneck.
//! let exp = GainExperiment::new(ScenarioSpec::ns2_dumbbell(15));
//! let baseline = exp.baseline_bytes()?;
//! // One pulsing attack: 75 ms pulses at 30 Mbps, normalized rate 0.3.
//! let point = exp.run_point(0.075, 30e6, 0.3, baseline)?;
//! println!("throughput degradation: {:.0}%", point.degradation_sim * 100.0);
//! # Ok::<(), pdos::scenarios::experiment::ExperimentError>(())
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub use pdos_analysis as analysis;
pub use pdos_attack as attack;
pub use pdos_detect as detect;
pub use pdos_scenarios as scenarios;
pub use pdos_sim as sim;
pub use pdos_tcp as tcp;

/// One-stop re-exports of the types most experiments touch.
pub mod prelude {
    pub use pdos_analysis::prelude::*;
    pub use pdos_attack::prelude::*;
    pub use pdos_detect::prelude::*;
    pub use pdos_scenarios::prelude::*;
    pub use pdos_sim::prelude::*;
    pub use pdos_tcp::prelude::*;
}
