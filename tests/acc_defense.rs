//! Integration tests for the aggregate-based congestion control defense
//! (the paper's reference [19]): the ACC penalty box catches the pulsing
//! aggregate that evades long-horizon volume detectors, and collapses the
//! attack gain.

use pdos::prelude::*;
use pdos::sim::queue::AccQueue;

fn degradation_under(queue: BottleneckQueue, gamma: f64) -> (f64, u64) {
    let mut spec = ScenarioSpec::ns2_dumbbell(8);
    spec.queue = queue;
    let exp = GainExperiment::new(spec.clone())
        .warmup(SimDuration::from_secs(6))
        .window(SimDuration::from_secs(25));
    let baseline = exp.baseline_bytes().expect("baseline runs");
    let p = exp
        .run_point(0.075, 30e6, gamma, baseline)
        .expect("attack point runs");
    (p.degradation_sim, p.timeouts)
}

#[test]
fn acc_collapses_the_pulsing_attack() {
    let (undefended, _) = degradation_under(BottleneckQueue::Red, 0.4);
    let (defended, _) = degradation_under(BottleneckQueue::AccRed, 0.4);
    assert!(
        undefended > 0.6,
        "reference attack must bite: {undefended:.2}"
    );
    assert!(
        defended < undefended * 0.6,
        "ACC must blunt the attack: {undefended:.2} -> {defended:.2}"
    );
}

#[test]
fn acc_penalizes_exactly_the_attack_flow() {
    let mut spec = ScenarioSpec::ns2_dumbbell(8);
    spec.queue = BottleneckQueue::AccRed;
    let mut bench = spec.build().expect("builds");
    let train = PulseTrain::new(
        SimDuration::from_millis(75),
        BitsPerSec::from_mbps(30.0),
        SimDuration::from_millis(300),
    )
    .expect("valid train");
    bench.attach_pulse_attack(train, SimTime::from_secs(6), None);
    bench.run_until(SimTime::from_secs(30));

    let acc = bench
        .sim
        .link(bench.bottleneck)
        .queue()
        .as_any()
        .downcast_ref::<AccQueue>()
        .expect("acc queue present");
    assert_eq!(
        acc.penalized_flows(),
        vec![ATTACK_FLOW],
        "only the attack aggregate belongs in the penalty box"
    );
    assert!(acc.limiter_drops() > 100, "the limiter must clip pulses");
}

#[test]
fn acc_leaves_unattacked_traffic_alone() {
    let mut spec = ScenarioSpec::ns2_dumbbell(8);
    spec.queue = BottleneckQueue::AccRed;
    let exp = GainExperiment::new(spec.clone())
        .warmup(SimDuration::from_secs(6))
        .window(SimDuration::from_secs(20));
    let acc_baseline = exp.baseline_bytes().expect("baseline runs");

    let mut plain = ScenarioSpec::ns2_dumbbell(8);
    plain.queue = BottleneckQueue::Red;
    let red_baseline = GainExperiment::new(plain)
        .warmup(SimDuration::from_secs(6))
        .window(SimDuration::from_secs(20))
        .baseline_bytes()
        .expect("baseline runs");

    let ratio = acc_baseline as f64 / red_baseline as f64;
    assert!(
        (0.9..=1.1).contains(&ratio),
        "ACC must not tax legitimate TCP: ratio {ratio:.3}"
    );
}
