//! Cross-crate invariants: packet conservation in the engine, and the
//! model's generality across AIMD parameterizations (§2.1 stresses the
//! analysis covers *general* `AIMD(a, b)` TCP-friendly protocols, not
//! just TCP's `(1, 0.5)`).

use pdos::prelude::*;
use pdos::tcp::sender::TcpSender;

/// Every packet the network accepted is accounted for: delivered to an
/// agent, delivered unclaimed, dropped by a queue, or still inside the
/// network (queued / in flight / timers pending) when the run stops.
#[test]
fn packet_conservation_under_attack() {
    let mut bench = ScenarioSpec::ns2_dumbbell(8).build().expect("builds");
    let train = PulseTrain::new(
        SimDuration::from_millis(75),
        BitsPerSec::from_mbps(30.0),
        SimDuration::from_millis(425),
    )
    .expect("valid train");
    bench.attach_pulse_attack(train, SimTime::from_secs(3), None);
    bench.run_until(SimTime::from_secs(20));

    let stats = bench.sim.stats();
    assert_eq!(stats.routeless, 0);

    // Offered to links - still buffered = transmitted or dropped; the
    // delivered+unclaimed count equals transmissions that reached their
    // final node.
    let mut offered = 0u64;
    let mut transmitted = 0u64;
    let mut dropped = 0u64;
    let mut backlog = 0u64;
    for link in bench.sim.links() {
        let s = link.stats();
        offered += s.offered_packets;
        transmitted += s.tx_packets;
        dropped += link.drops();
        backlog += link.backlog_packets() as u64;
    }
    // Conservation at the link layer: everything offered is transmitted,
    // dropped, buffered, or the single in-flight packet per link.
    let in_flight_bound = bench.sim.links().len() as u64;
    let accounted = transmitted + dropped + backlog;
    assert!(
        offered >= accounted && offered <= accounted + in_flight_bound,
        "offered {offered} vs transmitted {transmitted} + dropped {dropped} + backlog {backlog}"
    );
    // End-to-end: arrivals at final nodes match deliveries to agents plus
    // unclaimed attack packets (propagating packets may still be in the
    // event queue, so delivered+unclaimed <= forwarded-to-hosts).
    assert!(stats.delivered > 0 && stats.unclaimed > 0);
    assert!(stats.queue_drops == dropped);
}

/// Eq. (1) holds for a *non-TCP* AIMD parameterization end-to-end:
/// `AIMD(0.31, 0.875)` (a TCP-friendly smooth-decrease protocol) should
/// converge to `W̄ = a·T/( (1−b)·d·RTT )` under the same attack.
#[test]
fn eq1_generalizes_beyond_tcp_parameters() {
    let (a, b) = (0.31, 0.875);
    let mut spec = ScenarioSpec::ns2_dumbbell(1);
    spec.rtt_lo = 0.200;
    spec.rtt_hi = 0.200;
    spec.tcp.aimd = AimdParams::new(a, b).expect("valid AIMD pair");
    spec.tcp.record_cwnd = true;

    let t_aimd = 2.0;
    let train = PulseTrain::new(
        SimDuration::from_millis(100),
        BitsPerSec::from_mbps(40.0),
        SimDuration::from_millis(1900),
    )
    .expect("valid train");
    let mut bench = spec.build().expect("builds");
    bench.attach_pulse_attack(train, SimTime::from_secs(10), None);
    bench.run_until(SimTime::from_secs(90));

    let sender = bench
        .sim
        .agent_as::<TcpSender>(bench.flows[0].sender)
        .expect("sender");
    let steady: Vec<&CwndSample> = sender
        .cwnd_trace()
        .iter()
        .filter(|s| s.at >= SimTime::from_secs(50))
        .collect();
    let mut peaks = Vec::new();
    for w in steady.windows(2) {
        // The gentle decrease drops by only 12.5%, so use a tight drop
        // detector.
        if w[1].cwnd < w[0].cwnd * 0.93 {
            peaks.push(w[0].cwnd);
        }
    }
    assert!(
        peaks.len() >= 5,
        "expected a gentle sawtooth, got {} drops",
        peaks.len()
    );
    let mean_peak: f64 = peaks.iter().sum::<f64>() / peaks.len() as f64;
    let w_bar = converged_window(a, b, 2.0, t_aimd, 0.200);
    // a=0.31, b=0.875, d=2: W̄ = 0.31·2/(0.125·2·0.2) = 12.4 segments.
    assert!((w_bar - 12.4).abs() < 1e-9);
    let rel = (mean_peak - w_bar).abs() / w_bar;
    assert!(
        rel < 0.5,
        "general-AIMD peaks (mean {mean_peak:.1}) should approximate W̄ = {w_bar:.1}"
    );
}

/// The gentler the multiplicative decrease, the higher the converged
/// window — the ordering Eq. (1) demands, verified in simulation.
#[test]
fn gentler_decrease_keeps_larger_windows() {
    let peak_mean = |b: f64| {
        let mut spec = ScenarioSpec::ns2_dumbbell(1);
        spec.rtt_lo = 0.200;
        spec.rtt_hi = 0.200;
        spec.tcp.aimd = AimdParams::new(1.0, b).expect("valid");
        spec.tcp.record_cwnd = true;
        let train = PulseTrain::new(
            SimDuration::from_millis(100),
            BitsPerSec::from_mbps(40.0),
            SimDuration::from_millis(1400),
        )
        .expect("valid train");
        let mut bench = spec.build().expect("builds");
        bench.attach_pulse_attack(train, SimTime::from_secs(8), None);
        bench.run_until(SimTime::from_secs(60));
        let sender = bench
            .sim
            .agent_as::<TcpSender>(bench.flows[0].sender)
            .expect("sender");
        let samples: Vec<f64> = sender
            .cwnd_trace()
            .iter()
            .filter(|s| s.at >= SimTime::from_secs(30))
            .map(|s| s.cwnd)
            .collect();
        samples.iter().sum::<f64>() / samples.len().max(1) as f64
    };
    let standard = peak_mean(0.5);
    let gentle = peak_mean(0.8);
    assert!(
        gentle > standard,
        "gentler decrease must hold more window: b=0.5 -> {standard:.1}, b=0.8 -> {gentle:.1}"
    );
}
