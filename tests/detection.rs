//! Integration tests for the detection claims of §1: flooding is caught
//! by volume detectors, low-duty-cycle pulsing slips under them, and
//! waveform (DTW) matching sees what volume misses.

use pdos::prelude::*;

/// Runs a scenario and returns the bottleneck's binned incoming bytes
/// during the attack window.
fn traffic_under(
    attack: Option<PulseTrain>,
    flood: Option<BitsPerSec>,
    window_secs: u64,
) -> Vec<u64> {
    let spec = ScenarioSpec::ns2_dumbbell(8);
    let bin = SimDuration::from_millis(100);
    let warmup = SimTime::from_secs(5);
    let mut bench = spec.build().expect("builds");
    let trace = bench.trace_bottleneck(TraceFilter::All, bin);
    if let Some(train) = attack {
        bench.attach_pulse_attack(train, warmup, None);
    }
    if let Some(rate) = flood {
        bench.attach_flood_attack(rate, warmup, None);
    }
    bench.run_until(warmup + SimDuration::from_secs(window_secs));
    let first = 50; // skip the 5 s warm-up (50 bins of 100 ms)
    bench.sim.trace(trace).bytes_per_bin()[first..].to_vec()
}

fn rate_detector() -> RateDetector {
    RateDetector::conventional(15e6, 0.1)
}

#[test]
fn flooding_attack_trips_rate_detector() {
    let bytes = traffic_under(None, Some(BitsPerSec::from_mbps(30.0)), 20);
    let report = rate_detector().run(&bytes);
    assert!(report.detected, "a 2x flood must alarm: {report:?}");
}

#[test]
fn low_gamma_pulsing_evades_rate_detector() {
    // γ ≈ 0.17: 50 ms pulses at 100 Mbps every 2 s. Average rate is only
    // 2.5 Mbps on a 15 Mbps link.
    let train = PulseTrain::new(
        SimDuration::from_millis(50),
        BitsPerSec::from_mbps(100.0),
        SimDuration::from_millis(1950),
    )
    .expect("valid train");
    let bytes = traffic_under(Some(train), None, 30);
    let report = rate_detector().run(&bytes);
    assert!(
        !report.detected,
        "a 2.5 Mbps-average pulsing attack must evade the volume detector: {report:?}"
    );
}

#[test]
fn dtw_detector_sees_the_pulse_shape() {
    let train = PulseTrain::new(
        SimDuration::from_millis(100),
        BitsPerSec::from_mbps(60.0),
        SimDuration::from_millis(1900),
    )
    .expect("valid train");
    let bytes = traffic_under(Some(train), None, 40);
    let series: Vec<f64> = bytes.iter().map(|&b| b as f64).collect();
    // Period 2 s = 20 bins of 100 ms; pulse = 1 bin.
    let det = DtwPulseDetector::new(20, 1, 0.9, Some(10));
    let report = det.sweep(&series);
    assert!(
        report.detected,
        "DTW should match the pulsing waveform: {report:?}"
    );
    // And the same detector stays quiet on unattacked traffic.
    let quiet_bytes = traffic_under(None, None, 40);
    let quiet: Vec<f64> = quiet_bytes.iter().map(|&b| b as f64).collect();
    let quiet_report = det.sweep(&quiet);
    assert!(
        quiet_report.best_distance > report.best_distance,
        "attacked traffic must look more pulse-like than baseline: {:.3} vs {:.3}",
        report.best_distance,
        quiet_report.best_distance
    );
}

#[test]
fn higher_gamma_is_more_exposed() {
    // The measured exposure (final EWMA utilization margin) grows with γ,
    // the monotonicity the (1-γ)^κ model assumes.
    let utilization_at = |gamma: f64| {
        let train = PulseTrain::from_gamma(
            SimDuration::from_millis(75),
            BitsPerSec::from_mbps(30.0),
            BitsPerSec::from_mbps(15.0),
            gamma,
        )
        .expect("feasible");
        let bytes = traffic_under(Some(train), None, 25);
        rate_detector().run(&bytes).final_utilization
    };
    let low = utilization_at(0.15);
    let high = utilization_at(0.8);
    assert!(
        high > low,
        "more attack volume must raise observed utilization: {low:.3} vs {high:.3}"
    );
}

#[test]
fn cusum_localizes_the_attack_onset() {
    // Attack begins at t = 5 s; 100 ms bins make that bin 50. The trace
    // includes the warm-up so the detector calibrates on clean traffic.
    let spec = ScenarioSpec::ns2_dumbbell(8);
    let bin = SimDuration::from_millis(100);
    let mut bench = spec.build().expect("builds");
    let trace = bench.trace_bottleneck(TraceFilter::All, bin);
    let train = PulseTrain::new(
        SimDuration::from_millis(75),
        BitsPerSec::from_mbps(30.0),
        SimDuration::from_millis(300),
    )
    .expect("valid train");
    bench.attach_pulse_attack(train, SimTime::from_secs(5), None);
    bench.run_until(SimTime::from_secs(30));
    let bytes = bench.sim.trace(trace).bytes_per_bin().to_vec();

    // On the raw volume series CUSUM is (nearly) blind: the attack adds
    // γ·R_bottle of traffic while suppressing a similar amount of TCP, so
    // the *mean* hardly moves — the stealth the paper's risk model prices.
    let on_mean = CusumDetector::new(40, 0.5, 8.0).scan(&bytes);
    assert!(
        !on_mean.detected(),
        "mean-level CUSUM should miss the pulsing attack: {on_mean:?}"
    );

    // The *dispersion* changes dramatically: pulsing turns smooth traffic
    // into spikes. CUSUM over successive absolute differences catches the
    // onset within a couple of seconds.
    let dispersion: Vec<u64> = bytes.windows(2).map(|w| w[0].abs_diff(w[1])).collect();
    let report = CusumDetector::new(40, 0.5, 8.0)
        .scan(&dispersion)
        .into_report()
        .expect("calibrated");
    assert!(report.detected, "{report:?}");
    let onset = report.onset_bin.expect("onset estimate");
    assert!(
        (45..=75).contains(&onset),
        "onset bin {onset} should be close to the true start (bin 50)"
    );
}
