//! Integration tests for reproducibility: a run is a pure function of its
//! seeds — the property that makes the experiment harness trustworthy.

use pdos::prelude::*;

fn run_once(seed: u64) -> (u64, Vec<u64>, u64, u64) {
    let mut spec = ScenarioSpec::ns2_dumbbell(6);
    spec.seed = seed;
    let mut bench = spec.build().expect("builds");
    let train = PulseTrain::new(
        SimDuration::from_millis(75),
        BitsPerSec::from_mbps(30.0),
        SimDuration::from_millis(425),
    )
    .expect("valid train");
    bench.attach_pulse_attack(train, SimTime::from_secs(5), None);
    bench.run_until(SimTime::from_secs(25));
    (
        bench.goodput_bytes(),
        bench.goodput_per_flow(),
        bench.total_timeouts(),
        bench.total_fast_recoveries(),
    )
}

#[test]
fn identical_seeds_reproduce_exactly() {
    let a = run_once(42);
    let b = run_once(42);
    assert_eq!(a, b, "same seed must give bit-identical results");
}

#[test]
fn different_seeds_differ() {
    // Different RED seeds change early-drop decisions, so at least the
    // per-flow distribution should differ somewhere.
    let a = run_once(42);
    let b = run_once(43);
    assert_ne!(
        (a.1.clone(), a.2, a.3),
        (b.1.clone(), b.2, b.3),
        "different seeds should perturb the run"
    );
}

#[test]
fn event_counts_are_stable() {
    let count = |seed: u64| {
        let mut spec = ScenarioSpec::ns2_dumbbell(4);
        spec.seed = seed;
        let mut bench = spec.build().expect("builds");
        bench.run_until(SimTime::from_secs(10));
        bench.sim.stats().events
    };
    assert_eq!(count(7), count(7));
}

#[test]
fn no_packets_are_lost_to_routing() {
    // Every packet either reaches an agent, is counted unclaimed (attack
    // sink), or was dropped by a queue — never dropped for lack of route.
    let mut bench = ScenarioSpec::ns2_dumbbell(6).build().expect("builds");
    let train = PulseTrain::new(
        SimDuration::from_millis(50),
        BitsPerSec::from_mbps(50.0),
        SimDuration::from_millis(950),
    )
    .expect("valid train");
    bench.attach_pulse_attack(train, SimTime::from_secs(2), None);
    bench.run_until(SimTime::from_secs(15));
    let stats = bench.sim.stats();
    assert_eq!(stats.routeless, 0, "{stats:?}");
    assert!(stats.delivered > 0);
    assert!(
        stats.unclaimed > 0,
        "attack packets land unclaimed at the sink"
    );
}

/// Dummynet-style impairments behave as configured: a 5% random-loss link
/// destroys ~5% of offered packets, and jitter spreads deliveries without
/// reordering-free guarantees being violated for our measurements.
#[test]
fn impaired_links_lose_and_jitter_as_configured() {
    use pdos::sim::agent::{Agent, AgentCtx};
    use std::any::Any;

    struct Pump {
        dst: NodeId,
        sent: u64,
    }
    impl Agent for Pump {
        fn start(&mut self, ctx: &mut AgentCtx<'_>) {
            ctx.timer_after(SimDuration::ZERO, 0);
        }
        fn on_packet(&mut self, _: Packet, _: &mut AgentCtx<'_>) {}
        fn on_timer(&mut self, _: u64, ctx: &mut AgentCtx<'_>) {
            if self.sent < 4000 {
                self.sent += 1;
                ctx.send(Packet::new(
                    FlowId::from_u32(1),
                    ctx.node(),
                    self.dst,
                    Bytes::from_u64(1000),
                    PacketKind::Background,
                ));
                ctx.timer_after(SimDuration::from_millis(1), 0);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    let mut t = TopologyBuilder::with_seed(4);
    let a = t.add_host("a");
    let b = t.add_host("b");
    let (fwd, _) = t.add_duplex_link(
        a,
        b,
        BitsPerSec::from_mbps(50.0),
        SimDuration::from_millis(10),
        QueueSpec::DropTail { capacity: 1000 },
    );
    t.set_impairments(
        fwd,
        Impairments {
            loss_prob: 0.05,
            jitter: SimDuration::from_millis(5),
        },
    );
    let mut sim = t.build().expect("builds");
    sim.attach_agent(a, Box::new(Pump { dst: b, sent: 0 }));
    sim.run_until(SimTime::from_secs(10));

    let link = sim.link(fwd);
    let loss = link.stats().impairment_drops as f64 / link.stats().offered_packets as f64;
    assert!(
        (0.03..=0.07).contains(&loss),
        "configured 5% loss, observed {loss:.3}"
    );
    // Deliveries happened despite the loss.
    assert!(sim.stats().unclaimed > 3500);
}
