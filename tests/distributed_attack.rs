//! Integration tests for distributed (multi-source) pulsing: the aggregate
//! of synchronized bots behaves like one big attacker, while staggered
//! bots dilute the pulse amplitude and lose the PDoS effect — pulse
//! *concentration*, not just average volume, is what hurts TCP.

use pdos::prelude::*;

fn degradation_with(n_sources: u32, phasing: AttackPhasing) -> f64 {
    let spec = ScenarioSpec::ns2_dumbbell(8);
    let warm = SimTime::from_secs(6);
    let end = SimTime::from_secs(31);

    // Baseline.
    let mut base = spec.build().expect("builds");
    base.run_until(warm);
    let b0 = base.goodput_bytes();
    base.run_until(end);
    let baseline = base.goodput_bytes() - b0;

    // Attack: aggregate 30 Mbps pulses of 75 ms every 375 ms (γ = 0.4).
    let train = PulseTrain::new(
        SimDuration::from_millis(75),
        BitsPerSec::from_mbps(30.0),
        SimDuration::from_millis(300),
    )
    .expect("valid train");
    let mut bench = spec.build().expect("builds");
    bench
        .attach_distributed_pulse_attack(train, warm, n_sources, phasing)
        .expect("feasible distribution");
    bench.run_until(warm);
    let g0 = bench.goodput_bytes();
    bench.run_until(end);
    let attacked = bench.goodput_bytes() - g0;
    1.0 - attacked as f64 / baseline as f64
}

#[test]
fn synchronized_bots_equal_one_big_attacker() {
    let single = degradation_with(1, AttackPhasing::Synchronized);
    let botnet = degradation_with(6, AttackPhasing::Synchronized);
    assert!(
        (single - botnet).abs() < 0.15,
        "synchronized sources must aggregate to the same attack: {single:.2} vs {botnet:.2}"
    );
    assert!(single > 0.4, "the reference attack must bite: {single:.2}");
}

#[test]
fn staggered_bots_lose_the_pulse_concentration() {
    let synchronized = degradation_with(8, AttackPhasing::Synchronized);
    let staggered = degradation_with(8, AttackPhasing::Staggered);
    assert!(
        staggered < synchronized,
        "staggering must dilute the damage: staggered {staggered:.2} vs synchronized {synchronized:.2}"
    );
}
