//! Integration tests for the two defense-side extensions: ECN marking at
//! the RED bottleneck (the paper's §5 "enhancement to the RED algorithms"
//! direction) and the randomized-RTO defense (§1.1), exercised in the
//! actual TCP stack rather than only in closed form.

use pdos::prelude::*;

fn goodput_and_drops(spec: &ScenarioSpec, secs: u64) -> (u64, u64, u64) {
    let mut bench = spec.build().expect("builds");
    bench.run_until(SimTime::from_secs(secs));
    let drops = bench.sim.link(bench.bottleneck).drops();
    let marks = bench.sim.stats().ecn_marks;
    (bench.goodput_bytes(), drops, marks)
}

/// With ECN negotiated, RED's early "drops" become marks: legitimate
/// traffic keeps its throughput with far fewer lost packets.
#[test]
fn ecn_replaces_early_drops_with_marks() {
    let plain = ScenarioSpec::ns2_dumbbell(8);
    let mut ecn = ScenarioSpec::ns2_dumbbell(8);
    ecn.tcp.ecn = true;

    let (goodput_plain, drops_plain, marks_plain) = goodput_and_drops(&plain, 30);
    let (goodput_ecn, drops_ecn, marks_ecn) = goodput_and_drops(&ecn, 30);

    assert_eq!(marks_plain, 0);
    assert!(marks_ecn > 0, "ECN run must mark");
    assert!(
        drops_ecn < drops_plain,
        "marking must displace dropping: {drops_ecn} vs {drops_plain}"
    );
    // Throughput must not collapse (both fill most of the bottleneck).
    let ratio = goodput_ecn as f64 / goodput_plain as f64;
    assert!(
        (0.8..=1.25).contains(&ratio),
        "ECN should roughly preserve goodput, ratio {ratio:.2}"
    );
}

/// ECN does not blunt the pulsing attack itself: the pulses overwhelm the
/// buffer faster than the average-queue marking loop reacts, and the
/// attack packets are not ECN-capable.
#[test]
fn ecn_does_not_defend_against_pulsing() {
    let mut spec = ScenarioSpec::ns2_dumbbell(8);
    spec.tcp.ecn = true;
    let exp = GainExperiment::new(spec)
        .warmup(SimDuration::from_secs(6))
        .window(SimDuration::from_secs(20));
    let baseline = exp.baseline_bytes().expect("baseline runs");
    let p = exp.run_point(0.075, 30e6, 0.4, baseline).expect("runs");
    assert!(
        p.degradation_sim > 0.3,
        "PDoS must still bite through ECN: {p:?}"
    );
}

/// The randomized-RTO defense de-synchronizes the shrew lock: with the
/// period pinned to `min_rto`, victims with stretched timers recover
/// between pulses, so goodput improves markedly.
#[test]
fn randomized_rto_mitigates_shrew_lock() {
    // A homogeneous long-RTT population: Eq. (1) gives W̄ = 1s/0.4s = 2.5
    // segments, below the duplicate-ACK threshold, so every pulse forces a
    // timeout and the T_AIMD = min_rto period can phase-lock it.
    let shrew_goodput = |spread: f64| {
        let mut spec = ScenarioSpec::ns2_dumbbell(6);
        spec.rtt_lo = 0.40;
        spec.rtt_hi = 0.42;
        spec.tcp.rto_rand_spread = spread;
        spec.tcp.rto_rand_seed = 11;
        let mut bench = spec.build().expect("builds");
        // Shrew attack: strong 50 ms pulses every min_rto = 1 s.
        let train = PulseTrain::new(
            SimDuration::from_millis(50),
            BitsPerSec::from_mbps(50.0),
            SimDuration::from_millis(950),
        )
        .expect("valid train");
        bench.attach_pulse_attack(train, SimTime::from_secs(6), None);
        bench.run_until(SimTime::from_secs(6));
        let before = bench.goodput_bytes();
        bench.run_until(SimTime::from_secs(46));
        bench.goodput_bytes() - before
    };

    let locked = shrew_goodput(0.0);
    let randomized = shrew_goodput(1.5);
    assert!(
        randomized as f64 > locked as f64 * 1.1,
        "randomizing the RTO must recover goodput under a shrew lock: {locked} -> {randomized}"
    );
}

/// But the same defense barely moves an AIMD-based attack, whose timing
/// never references the RTO — the paper's §1.1 argument for studying the
/// AIMD attack in the first place.
#[test]
fn randomized_rto_does_not_stop_aimd_attack() {
    let aimd_goodput = |spread: f64| {
        let mut spec = ScenarioSpec::ns2_dumbbell(8);
        spec.tcp.rto_rand_spread = spread;
        spec.tcp.rto_rand_seed = 11;
        let mut bench = spec.build().expect("builds");
        // Off-harmonic AIMD attack: period 0.42 s (not min_rto/n), strong
        // enough to keep windows clamped via fast recovery.
        let train = PulseTrain::new(
            SimDuration::from_millis(75),
            BitsPerSec::from_mbps(30.0),
            SimDuration::from_millis(345),
        )
        .expect("valid train");
        bench.attach_pulse_attack(train, SimTime::from_secs(6), None);
        bench.run_until(SimTime::from_secs(6));
        let before = bench.goodput_bytes();
        bench.run_until(SimTime::from_secs(36));
        bench.goodput_bytes() - before
    };

    let plain = aimd_goodput(0.0);
    let randomized = aimd_goodput(1.5);
    let improvement = randomized as f64 / plain as f64;
    assert!(
        improvement < 1.5,
        "randomized RTO must not be a real defense against the AIMD attack: x{improvement:.2}"
    );
}
