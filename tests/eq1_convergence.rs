//! Integration test: under a fixed-period pulsing attack, a victim's
//! congestion window converges to the Eq. (1) value
//! `W̄ = a·T_AIMD / ((1−b)·d·RTT)` — the foundation of the whole model.

use pdos::prelude::*;
use pdos::tcp::sender::TcpSender;

/// Builds a single-flow dumbbell with cwnd recording and a long-period
/// attack, then compares the sawtooth's peaks to Eq. (1).
#[test]
fn cwnd_converges_to_eq1() {
    let mut spec = ScenarioSpec::ns2_dumbbell(1);
    // One flow with a 200 ms RTT.
    spec.rtt_lo = 0.200;
    spec.rtt_hi = 0.200;
    spec.tcp.record_cwnd = true;

    let mut bench = spec.build().expect("topology builds");
    // 100 ms pulses at 40 Mbps every 2 s: each pulse floods the 60-packet
    // buffer (500 packets arrive while ~190 drain), forcing losses.
    let train = PulseTrain::new(
        SimDuration::from_millis(100),
        BitsPerSec::from_mbps(40.0),
        SimDuration::from_millis(1900),
    )
    .expect("valid pulse train");
    let t_aimd = train.period().as_secs_f64();
    bench.attach_pulse_attack(train, SimTime::from_secs(10), None);
    bench.run_until(SimTime::from_secs(70));

    let sender = bench
        .sim
        .agent_as::<TcpSender>(bench.flows[0].sender)
        .expect("sender present");
    let trace = sender.cwnd_trace();
    assert!(!trace.is_empty(), "cwnd trace must be recorded");

    // Collect the cwnd peaks (values right before each drop) in the
    // steady phase (after 30 s, well past the transient).
    let steady: Vec<&CwndSample> = trace
        .iter()
        .filter(|s| s.at >= SimTime::from_secs(30))
        .collect();
    let mut peaks = Vec::new();
    for w in steady.windows(2) {
        if w[1].cwnd < w[0].cwnd * 0.8 {
            peaks.push(w[0].cwnd);
        }
    }
    assert!(
        peaks.len() >= 5,
        "expected a sawtooth with many peaks, got {} drops",
        peaks.len()
    );

    let mean_peak: f64 = peaks.iter().sum::<f64>() / peaks.len() as f64;
    // Eq. (1): W̄ = 1·2 / (0.5·2·0.2) = 10 segments. The peak of the
    // sawtooth is W̄/b-ish above the converged mean under the paper's
    // definition (W̄ is the pre-drop value), so compare against W̄ itself.
    let w_bar = converged_window(1.0, 0.5, 2.0, t_aimd, 0.200);
    assert!((w_bar - 10.0).abs() < 1e-9);
    let rel = (mean_peak - w_bar).abs() / w_bar;
    assert!(
        rel < 0.5,
        "steady-state cwnd peaks (mean {mean_peak:.1}) should approximate W̄ = {w_bar:.1}"
    );
}

/// Doubling the attack period doubles the converged window (Eq. 1 is
/// linear in T_AIMD) — verified end-to-end in simulation.
#[test]
fn converged_window_scales_with_period() {
    let peak_for_period = |space_ms: u64| -> f64 {
        let mut spec = ScenarioSpec::ns2_dumbbell(1);
        spec.rtt_lo = 0.200;
        spec.rtt_hi = 0.200;
        spec.tcp.record_cwnd = true;
        let mut bench = spec.build().expect("topology builds");
        let train = PulseTrain::new(
            SimDuration::from_millis(100),
            BitsPerSec::from_mbps(40.0),
            SimDuration::from_millis(space_ms),
        )
        .expect("valid train");
        bench.attach_pulse_attack(train, SimTime::from_secs(5), None);
        bench.run_until(SimTime::from_secs(65));
        let sender = bench
            .sim
            .agent_as::<TcpSender>(bench.flows[0].sender)
            .expect("sender present");
        let steady: Vec<&CwndSample> = sender
            .cwnd_trace()
            .iter()
            .filter(|s| s.at >= SimTime::from_secs(25))
            .collect();
        let mut peaks = Vec::new();
        for w in steady.windows(2) {
            if w[1].cwnd < w[0].cwnd * 0.8 {
                peaks.push(w[0].cwnd);
            }
        }
        assert!(!peaks.is_empty(), "no cwnd drops observed");
        peaks.iter().sum::<f64>() / peaks.len() as f64
    };

    // Periods chosen off the shrew harmonics of the 1 s minimum RTO: at
    // T_AIMD = min_rto/n the flow locks into timeout and has no sawtooth.
    let short = peak_for_period(1400); // T = 1.5 s
    let long = peak_for_period(2900); // T = 3 s
    let ratio = long / short;
    assert!(
        (1.4..=2.8).contains(&ratio),
        "doubling T_AIMD should roughly double the converged window: {short:.1} -> {long:.1} (ratio {ratio:.2})"
    );
}
