//! False-positive analysis: a benign flash crowd (many request/response
//! flows arriving at once) changes the traffic as dramatically as an
//! attack — but without the attack's periodicity. The spectral detector
//! must separate the two where mean/change detectors cannot.

use pdos::prelude::*;
use pdos::tcp::sender::TcpSender;
use pdos::tcp::sink::TcpSink;

/// A dumbbell with 4 long-lived flows; at `t = 12 s`, 16 mice flows
/// arrive within half a second (the flash crowd), or a pulsing attack
/// starts instead.
fn bottleneck_trace(flash_crowd: bool, attack: bool) -> Vec<u64> {
    let mut t = TopologyBuilder::with_seed(9);
    let s = t.add_router("S");
    let r = t.add_router("R");
    let bottleneck = BitsPerSec::from_mbps(15.0);
    let access = BitsPerSec::from_mbps(50.0);
    let red = QueueSpec::Red({
        let mut cfg = RedConfig::paper_testbed(60);
        cfg.mean_packet_size = Bytes::from_u64(1040);
        cfg
    });
    let ample = QueueSpec::DropTail { capacity: 10_000 };
    let fwd = t.add_link(s, r, bottleneck, SimDuration::from_millis(5), red);
    t.add_link(r, s, bottleneck, SimDuration::from_millis(5), ample.clone());

    let mut endpoints = Vec::new();
    for i in 0..20 {
        let src = t.add_host(format!("src{i}"));
        let dst = t.add_host(format!("dst{i}"));
        let delay = SimDuration::from_millis(4 + (i as u64 % 7) * 3);
        t.add_duplex_link(src, s, access, delay, ample.clone());
        t.add_duplex_link(dst, r, access, SimDuration::from_millis(1), ample.clone());
        endpoints.push((src, dst));
    }
    let attacker = t.add_host("attacker");
    let sinkhost = t.add_host("attack-sink");
    t.add_duplex_link(
        attacker,
        s,
        BitsPerSec::from_mbps(1000.0),
        SimDuration::from_millis(1),
        ample.clone(),
    );
    t.add_duplex_link(
        sinkhost,
        r,
        BitsPerSec::from_mbps(1000.0),
        SimDuration::from_millis(1),
        ample,
    );

    let mut sim = t.build().expect("builds");
    let bin = SimDuration::from_millis(100);
    let trace = sim.trace_link_ingress(fwd, TraceFilter::All, bin);

    for (i, &(src, dst)) in endpoints.iter().enumerate() {
        let flow = FlowId::from_u32(i as u32);
        let mut cfg = TcpConfig::ns2_newreno();
        let start = if i < 4 {
            SimTime::from_millis(211 * i as u64) // the standing elephants
        } else {
            if !flash_crowd {
                continue; // crowd flows absent in the attack run
            }
            cfg.burst_segments = Some(30);
            cfg.think_time = SimDuration::from_millis(400);
            SimTime::from_secs(12) + SimDuration::from_millis(29 * i as u64) // the crowd
        };
        let tx = sim.attach_agent_at(src, Box::new(TcpSender::new(cfg.clone(), flow, dst)), start);
        let rx = sim.attach_agent(dst, Box::new(TcpSink::new(cfg, flow, src)));
        sim.bind_flow(src, flow, tx);
        sim.bind_flow(dst, flow, rx);
    }
    if attack {
        let train = PulseTrain::new(
            SimDuration::from_millis(75),
            BitsPerSec::from_mbps(30.0),
            SimDuration::from_millis(425),
        )
        .expect("valid train");
        let src = Box::new(pdos::attack::source::PulseSource::new(
            train,
            FlowId::from_u32(999),
            sinkhost,
            Bytes::from_u64(1000),
            None,
        ));
        sim.attach_agent_at(attacker, src, SimTime::from_secs(12));
    }
    sim.run_until(SimTime::from_secs(42));
    sim.trace(trace).bytes_per_bin().to_vec()
}

#[test]
fn spectral_detector_separates_crowd_from_attack() {
    let crowd = bottleneck_trace(true, false);
    let attacked = bottleneck_trace(false, true);
    let sweep = |bytes: &[u64]| {
        // Look only at the post-event window (after bin 120).
        let series: Vec<f64> = bytes[120..].iter().map(|&b| b as f64).collect();
        SpectralDetector::new(3, 60, 15.0).sweep(&series)
    };
    let on_crowd = sweep(&crowd);
    let on_attack = sweep(&attacked);
    assert!(
        !on_crowd.detected,
        "a benign flash crowd must not read as periodic: {on_crowd:?}"
    );
    assert!(
        on_attack.detected,
        "the pulsing attack must read as periodic: {on_attack:?}"
    );
}

#[test]
fn change_detectors_flag_both_events() {
    // Both events are real traffic changes — CUSUM on dispersion is
    // *supposed* to fire for both; telling them apart is the spectral
    // detector's job (previous test).
    for (label, bytes) in [
        ("flash crowd", bottleneck_trace(true, false)),
        ("attack", bottleneck_trace(false, true)),
    ] {
        let dispersion: Vec<u64> = bytes.windows(2).map(|w| w[0].abs_diff(w[1])).collect();
        let rep = CusumDetector::new(100, 0.5, 8.0)
            .scan(&dispersion)
            .into_report()
            .expect("calibrated");
        assert!(rep.detected, "{label}: dispersion change expected: {rep:?}");
        let onset = rep.onset_bin.expect("onset");
        assert!(
            (110..=160).contains(&onset),
            "{label}: onset bin {onset} should be near the event at bin 120"
        );
    }
}
