//! Integration tests for the gain model (Figs. 6–9 behaviour): the
//! measured gain curve has the analytical shape — zero at both ends, a
//! single broad interior maximum near γ*, degradation monotone in γ.

use pdos::prelude::*;

fn experiment(n_flows: usize) -> GainExperiment {
    GainExperiment::new(ScenarioSpec::ns2_dumbbell(n_flows))
        .warmup(SimDuration::from_secs(8))
        .window(SimDuration::from_secs(25))
}

#[test]
fn degradation_increases_with_gamma() {
    let exp = experiment(6);
    let sweep = exp
        .sweep(0.075, 30e6, &[0.15, 0.45, 0.85])
        .expect("sweep runs");
    assert_eq!(sweep.points.len(), 3);
    let d: Vec<f64> = sweep.points.iter().map(|p| p.degradation_sim).collect();
    assert!(d[0] < d[2], "higher normalized rate must hurt more: {d:?}");
    // All points cause real damage.
    assert!(d.iter().all(|&x| x > 0.1), "every point degrades: {d:?}");
}

#[test]
fn gain_has_interior_maximum() {
    // The gain G = Γ(1−γ) must fall at γ → 1 even though Γ keeps rising:
    // the stealth factor wins. This is the defining shape of Figs. 6–9.
    let exp = experiment(6);
    let sweep = exp
        .sweep(0.075, 30e6, &[0.15, 0.35, 0.6, 0.95])
        .expect("sweep runs");
    let g: Vec<f64> = sweep.points.iter().map(|p| p.g_sim).collect();
    let max = g.iter().cloned().fold(f64::MIN, f64::max);
    assert!(
        g[3] < max * 0.8,
        "gain must collapse near γ=1 (stealth factor): {g:?}"
    );
    assert!(max > 0.2, "interior gain must be substantial: {g:?}");
    // The maximum is not at the last point.
    let argmax = g
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap()
        .0;
    assert!(argmax < 3, "maximum should be interior: {g:?}");
}

#[test]
fn measured_optimum_near_analytic_gamma_star() {
    let exp = experiment(8);
    let victims = ScenarioSpec::ns2_dumbbell(8).victims();
    let c = c_psi(&victims, 0.075, 30e6).expect("valid parameters");
    let gs = gamma_star(c, RiskPreference::NEUTRAL);
    // Probe the predicted optimum and two distant points.
    let probe = [0.1_f64.max(gs / 3.0), gs, (gs * 2.5).min(0.95)];
    let sweep = exp.sweep(0.075, 30e6, &probe).expect("sweep runs");
    let g: Vec<f64> = sweep.points.iter().map(|p| p.g_sim).collect();
    // The predicted optimum must beat at least the far-right point, and
    // the overall winner must not be the rightmost point (stealth loss).
    assert!(
        g[1] > g[2],
        "gain at γ* = {gs:.2} should beat γ = {:.2}: {g:?}",
        probe[2]
    );
}

#[test]
fn more_flows_raise_c_psi_and_shift_optimum_right() {
    // Analytical cross-check wired through the scenario bridge: more
    // victim flows -> larger C_Ψ -> larger γ* (harder to hurt everyone
    // stealthily). Matches the panel progression in Figs. 6–9.
    let c15 = c_psi(&ScenarioSpec::ns2_dumbbell(15).victims(), 0.075, 30e6).unwrap();
    let c45 = c_psi(&ScenarioSpec::ns2_dumbbell(45).victims(), 0.075, 30e6).unwrap();
    assert!(c45 > c15);
    assert!(gamma_star(c45, RiskPreference::NEUTRAL) > gamma_star(c15, RiskPreference::NEUTRAL));
}

#[test]
fn flooding_baseline_is_total_but_loud() {
    // γ ≈ 1 (flooding): near-total denial of service — and exactly the
    // regime the PDoS attacker avoids because the risk factor vanishes.
    let spec = ScenarioSpec::ns2_dumbbell(6);
    let exp = GainExperiment::new(spec.clone())
        .warmup(SimDuration::from_secs(8))
        .window(SimDuration::from_secs(20));
    let baseline = exp.baseline_bytes().expect("baseline runs");

    let mut bench = spec.build().expect("builds");
    bench.attach_flood_attack(BitsPerSec::from_mbps(30.0), SimTime::from_secs(8), None);
    bench.run_until(SimTime::from_secs(8));
    let before = bench.goodput_bytes();
    bench.run_until(SimTime::from_secs(28));
    let flooded = bench.goodput_bytes() - before;

    let degradation = 1.0 - flooded as f64 / baseline as f64;
    assert!(
        degradation > 0.9,
        "a 2x-capacity flood must annihilate TCP, got {degradation:.2}"
    );
}

/// The model's fairness prediction holds in simulation: an attack skews
/// the per-flow goodput distribution (Jain's index falls) because
/// short-RTT flows recover between pulses while long-RTT flows cannot.
#[test]
fn attack_amplifies_rtt_unfairness() {
    let spec = ScenarioSpec::ns2_dumbbell(10);
    let warm = SimTime::from_secs(8);
    let end = SimTime::from_secs(33);

    let per_flow = |attacked: bool| -> Vec<f64> {
        let mut bench = spec.build().expect("builds");
        if attacked {
            let train = PulseTrain::new(
                SimDuration::from_millis(75),
                BitsPerSec::from_mbps(30.0),
                SimDuration::from_millis(625),
            )
            .expect("valid train");
            bench.attach_pulse_attack(train, warm, None);
        }
        bench.run_until(warm);
        let before = bench.goodput_per_flow();
        bench.run_until(end);
        bench
            .goodput_per_flow()
            .iter()
            .zip(&before)
            .map(|(&a, &b)| (a - b) as f64)
            .collect()
    };

    let fair_base = jain_index(&per_flow(false));
    let fair_attacked = jain_index(&per_flow(true));
    assert!(
        fair_attacked < fair_base,
        "the attack must skew shares toward short-RTT flows: {fair_base:.3} -> {fair_attacked:.3}"
    );
    // And the direction matches the analytic prediction.
    let p = predicted_fairness(&spec.victims());
    assert!(p.under_attack < p.baseline);
}
