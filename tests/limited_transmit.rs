//! Integration test for Limited Transmit (RFC 3042): keeping the ACK
//! clock alive lets small-window victims reach fast retransmit instead of
//! timing out — shifting reactions from TO to FR under a pulsing attack.

use pdos::prelude::*;

fn reactions(limited_transmit: bool) -> (u64, u64, u64) {
    let mut spec = ScenarioSpec::ns2_dumbbell(8);
    spec.tcp.limited_transmit = limited_transmit;
    let mut bench = spec.build().expect("builds");
    let train = PulseTrain::new(
        SimDuration::from_millis(75),
        BitsPerSec::from_mbps(30.0),
        SimDuration::from_millis(625), // T = 0.7 s, off the shrew harmonics
    )
    .expect("valid train");
    bench.attach_pulse_attack(train, SimTime::from_secs(6), None);
    bench.run_until(SimTime::from_secs(36));
    (
        bench.total_timeouts(),
        bench.total_fast_recoveries(),
        bench.goodput_bytes(),
    )
}

#[test]
fn limited_transmit_shifts_timeouts_toward_fast_recovery() {
    let (to_base, fr_base, _) = reactions(false);
    let (to_lt, fr_lt, _) = reactions(true);
    let share = |to: u64, fr: u64| to as f64 / (to + fr).max(1) as f64;
    assert!(
        share(to_lt, fr_lt) < share(to_base, fr_base),
        "RFC 3042 must lower the timeout share: base {to_base}/{fr_base} vs LT {to_lt}/{fr_lt}"
    );
}

/// SACK's value shows on large windows: each pulse knocks several holes
/// into the window, which NewReno repairs one partial-ACK RTT at a time
/// while SACK repairs them in parallel; stacking Limited Transmit on top
/// keeps small post-drop windows out of timeout entirely.
#[test]
fn sack_and_limited_transmit_speed_multi_loss_recovery() {
    let run = |sack: bool, lt: bool| {
        let mut spec = ScenarioSpec::ns2_dumbbell(2);
        spec.rtt_lo = 0.15;
        spec.rtt_hi = 0.16;
        spec.tcp.sack = sack;
        spec.tcp.limited_transmit = lt;
        let mut bench = spec.build().expect("builds");
        let train = PulseTrain::new(
            SimDuration::from_millis(60),
            BitsPerSec::from_mbps(40.0),
            SimDuration::from_millis(1940),
        )
        .expect("valid train");
        bench.attach_pulse_attack(train, SimTime::from_secs(6), None);
        bench.run_until(SimTime::from_secs(6));
        let g0 = bench.goodput_bytes();
        bench.run_until(SimTime::from_secs(46));
        (bench.goodput_bytes() - g0, bench.total_timeouts())
    };
    let (good_plain, to_plain) = run(false, false);
    let (good_sack, to_sack) = run(true, false);
    let (good_both, to_both) = run(true, true);

    assert!(
        good_sack as f64 > good_plain as f64 * 1.05,
        "SACK must recover goodput: {good_plain} -> {good_sack}"
    );
    assert!(
        good_both > good_sack,
        "adding Limited Transmit must help further: {good_sack} -> {good_both}"
    );
    assert!(
        to_both < to_plain,
        "SACK+LT must cut timeouts: {to_plain} -> {to_both} (SACK alone: {to_sack})"
    );
}
