//! End-to-end validation of Lemma 2 (Eq. 9): in the FR-dominant regime
//! the aggregate victim throughput under attack matches the closed form
//! `a(1+b)·T²·S/(2d(1−b)) · (N−1) · Σ1/RTT²` to within a small factor.

use pdos::prelude::*;

/// Parameters chosen so the model's assumptions hold: homogeneous
/// moderate RTTs (converged window W̄ = T/RTT ≈ 13 segments — plenty of
/// dup-ACKs for fast recovery), long off-harmonic period, pulses strong
/// enough to hit every flow.
#[test]
fn lemma2_aggregate_matches_in_fr_regime() {
    let mut spec = ScenarioSpec::ns2_dumbbell(4);
    spec.rtt_lo = 0.100;
    spec.rtt_hi = 0.115;
    // SACK + Limited Transmit keep the victims in the FR regime the
    // model assumes.
    spec.tcp.sack = true;
    spec.tcp.limited_transmit = true;
    let t_aimd = 1.4; // off the 1 s min-RTO harmonics

    let mut bench = spec.build().expect("builds");
    // Pulse width below RTT/2 so each pulse causes exactly one loss event
    // per flow (one FR, one multiplicative decrease) — the model's unit
    // of damage. Wider pulses at this rate cause double decreases and
    // timeouts (over-gain, ratio ~0.4); weaker pulses miss flows
    // (under-gain, ratio ~2).
    let train = PulseTrain::new(
        SimDuration::from_millis(40),
        BitsPerSec::from_mbps(50.0),
        SimDuration::from_secs_f64(t_aimd - 0.040),
    )
    .expect("valid train");
    bench.attach_pulse_attack(train, SimTime::from_secs(10), None);

    // Skip the transient (< 10 pulses), measure 20 whole periods.
    let measure_from = SimTime::from_secs_f64(10.0 + 8.0 * t_aimd);
    let n_periods = 20u32;
    let measure_to = measure_from + SimDuration::from_secs_f64(t_aimd * f64::from(n_periods));
    bench.run_until(measure_from);
    let before = bench.goodput_bytes();
    bench.run_until(measure_to);
    let measured = (bench.goodput_bytes() - before) as f64;

    // Eq. (9) with N−1 = measured periods.
    let victims = spec.victims();
    let predicted = psi_attack(&victims, n_periods as usize + 1, t_aimd);

    let ratio = measured / predicted;
    assert!(
        (0.75..=1.55).contains(&ratio),
        "Lemma 2 aggregate: measured {measured:.0} vs predicted {predicted:.0} (ratio {ratio:.2})"
    );
    // And the FR count confirms the regime: about one recovery per flow
    // per pulse, essentially no timeouts.
    assert!(bench.total_timeouts() < 6, "FR regime expected");
}

/// Lemma 1's premise measured: without an attack the victims fill the
/// bottleneck, so Ψ_normal ≈ R_bottle·(N−1)·T/8 within ~15%.
#[test]
fn lemma1_normal_throughput_matches() {
    let spec = ScenarioSpec::ns2_dumbbell(10);
    let mut bench = spec.build().expect("builds");
    let t_aimd = 2.0;
    let n_periods = 15u32;
    bench.run_until(SimTime::from_secs(10));
    let before = bench.goodput_bytes();
    bench.run_until(SimTime::from_secs_f64(10.0 + t_aimd * f64::from(n_periods)));
    let measured = (bench.goodput_bytes() - before) as f64;
    let predicted = psi_normal(15e6, n_periods as usize + 1, t_aimd);
    let ratio = measured / predicted;
    assert!(
        (0.8..=1.05).contains(&ratio),
        "Lemma 1: measured {measured:.0} vs predicted {predicted:.0} (ratio {ratio:.2})"
    );
}

/// Putting Lemmas 1 and 2 together: the measured Γ at a normal-gain
/// operating point lands within ±0.25 of Prop. 2's prediction.
#[test]
fn prop2_degradation_matches_at_normal_gain_point() {
    let mut spec = ScenarioSpec::ns2_dumbbell(4);
    spec.rtt_lo = 0.100;
    spec.rtt_hi = 0.115;
    spec.tcp.sack = true;
    spec.tcp.limited_transmit = true;

    let exp = GainExperiment::new(spec.clone())
        .warmup(SimDuration::from_secs(10))
        .window(SimDuration::from_secs(28));
    let baseline = exp.baseline_bytes().expect("baseline runs");
    // γ chosen for a ~1.4 s period with the 40 ms / 50 Mbps pulses.
    let gamma = 50e6 * 0.040 / (15e6 * 1.4);
    let p = exp
        .run_point(0.040, 50e6, gamma, baseline)
        .expect("point runs");
    assert!(
        (p.degradation_sim - p.degradation_analytic).abs() < 0.25,
        "Prop. 2 at a normal-gain point: model {:.2} vs measured {:.2}",
        p.degradation_analytic,
        p.degradation_sim
    );
}

/// Robustness: with 1% ambient random loss on the bottleneck (a lossy
/// path, Dummynet's `plr`), the attack still dominates the damage and
/// the gain curve keeps its shape.
#[test]
fn attack_dominates_ambient_loss() {
    let mut spec = ScenarioSpec::ns2_dumbbell(6);
    spec.bottleneck_loss = 0.01;
    let exp = GainExperiment::new(spec)
        .warmup(SimDuration::from_secs(8))
        .window(SimDuration::from_secs(20));
    let baseline = exp.baseline_bytes().expect("baseline runs");
    assert!(baseline > 0);
    let weak = exp.run_point(0.075, 30e6, 0.15, baseline).expect("runs");
    let strong = exp.run_point(0.075, 30e6, 0.6, baseline).expect("runs");
    assert!(
        strong.degradation_sim > weak.degradation_sim,
        "monotonicity survives ambient loss: {:.2} vs {:.2}",
        weak.degradation_sim,
        strong.degradation_sim
    );
    assert!(strong.degradation_sim > 0.5, "{strong:?}");
}
