//! Substrate generality: a parking-lot topology (three routers in a
//! chain, two bottleneck hops) built directly on `pdos-sim`. The attack
//! targets the middle hop; flows crossing it suffer, flows that avoid it
//! do not — locality the dumbbell cannot express.

use pdos::attack::source::PulseSource;
use pdos::prelude::*;
use pdos::tcp::sender::TcpSender;
use pdos::tcp::sink::TcpSink;

struct ParkingLot {
    sim: Simulator,
    /// (flow, sink agent) per group: long (r1→r3), right (r2→r3),
    /// left (r1→r2).
    long: Vec<(FlowId, pdos::sim::agent::AgentId)>,
    right: Vec<(FlowId, pdos::sim::agent::AgentId)>,
    left: Vec<(FlowId, pdos::sim::agent::AgentId)>,
    attacker: NodeId,
    attack_sink: NodeId,
}

fn build(n_per_group: usize) -> ParkingLot {
    let mut t = TopologyBuilder::with_seed(5);
    let r1 = t.add_router("r1");
    let r2 = t.add_router("r2");
    let r3 = t.add_router("r3");
    let bottleneck = BitsPerSec::from_mbps(15.0);
    let access = BitsPerSec::from_mbps(50.0);
    let red = QueueSpec::Red({
        let mut cfg = RedConfig::paper_testbed(60);
        cfg.mean_packet_size = Bytes::from_u64(1040);
        cfg
    });
    let ample = QueueSpec::DropTail { capacity: 10_000 };

    // Two bottleneck hops r1->r2->r3 (RED forward, ample reverse).
    t.add_link(r1, r2, bottleneck, SimDuration::from_millis(5), red.clone());
    t.add_link(
        r2,
        r1,
        bottleneck,
        SimDuration::from_millis(5),
        ample.clone(),
    );
    t.add_link(r2, r3, bottleneck, SimDuration::from_millis(5), red);
    t.add_link(
        r3,
        r2,
        bottleneck,
        SimDuration::from_millis(5),
        ample.clone(),
    );

    let mut hosts = Vec::new();
    let add_pair = |t: &mut TopologyBuilder, src_router, dst_router, tag: &str, i: usize| {
        let src = t.add_host(format!("{tag}-src{i}"));
        let dst = t.add_host(format!("{tag}-dst{i}"));
        t.add_duplex_link(
            src,
            src_router,
            access,
            SimDuration::from_millis(2),
            ample.clone(),
        );
        t.add_duplex_link(
            dst,
            dst_router,
            access,
            SimDuration::from_millis(2),
            ample.clone(),
        );
        (src, dst)
    };
    for i in 0..n_per_group {
        hosts.push(("long", add_pair(&mut t, r1, r3, "long", i)));
        hosts.push(("right", add_pair(&mut t, r2, r3, "right", i)));
        hosts.push(("left", add_pair(&mut t, r1, r2, "left", i)));
    }
    let attacker = t.add_host("attacker");
    let attack_sink = t.add_host("attack-sink");
    t.add_duplex_link(
        attacker,
        r2,
        BitsPerSec::from_mbps(1000.0),
        SimDuration::from_millis(1),
        ample.clone(),
    );
    t.add_duplex_link(
        attack_sink,
        r3,
        BitsPerSec::from_mbps(1000.0),
        SimDuration::from_millis(1),
        ample,
    );

    let mut sim = t.build().expect("parking lot builds");
    let cfg = TcpConfig::ns2_newreno();
    let (mut long, mut right, mut left) = (Vec::new(), Vec::new(), Vec::new());
    for (i, &(tag, (src, dst))) in hosts.iter().enumerate() {
        let flow = FlowId::from_u32(i as u32);
        let start = SimTime::from_millis(53 * i as u64);
        let tx = sim.attach_agent_at(src, Box::new(TcpSender::new(cfg.clone(), flow, dst)), start);
        let rx = sim.attach_agent(dst, Box::new(TcpSink::new(cfg.clone(), flow, src)));
        sim.bind_flow(src, flow, tx);
        sim.bind_flow(dst, flow, rx);
        match tag {
            "long" => long.push((flow, rx)),
            "right" => right.push((flow, rx)),
            _ => left.push((flow, rx)),
        }
    }
    ParkingLot {
        sim,
        long,
        right,
        left,
        attacker,
        attack_sink,
    }
}

fn group_goodput(sim: &Simulator, group: &[(FlowId, pdos::sim::agent::AgentId)]) -> u64 {
    group
        .iter()
        .map(|&(_, rx)| sim.agent_as::<TcpSink>(rx).expect("sink").goodput_bytes())
        .sum()
}

fn run(attacked: bool) -> (f64, f64, f64) {
    let mut lot = build(3);
    if attacked {
        // Pulses at the middle hop r2->r3 (the attack sink sits behind r3).
        let train = PulseTrain::new(
            SimDuration::from_millis(75),
            BitsPerSec::from_mbps(30.0),
            SimDuration::from_millis(425),
        )
        .expect("valid train");
        let src = Box::new(PulseSource::new(
            train,
            FlowId::from_u32(9999),
            lot.attack_sink,
            Bytes::from_u64(1000),
            None,
        ));
        lot.sim
            .attach_agent_at(lot.attacker, src, SimTime::from_secs(6));
    }
    lot.sim.run_until(SimTime::from_secs(6));
    let before = (
        group_goodput(&lot.sim, &lot.long),
        group_goodput(&lot.sim, &lot.right),
        group_goodput(&lot.sim, &lot.left),
    );
    lot.sim.run_until(SimTime::from_secs(30));
    let after = (
        group_goodput(&lot.sim, &lot.long),
        group_goodput(&lot.sim, &lot.right),
        group_goodput(&lot.sim, &lot.left),
    );
    (
        (after.0 - before.0) as f64,
        (after.1 - before.1) as f64,
        (after.2 - before.2) as f64,
    )
}

#[test]
fn attack_on_middle_hop_spares_the_left_segment() {
    let (long_b, right_b, left_b) = run(false);
    let (long_a, right_a, left_a) = run(true);
    let deg = |b: f64, a: f64| 1.0 - a / b.max(1.0);

    // Flows crossing the attacked hop collapse...
    assert!(
        deg(long_b, long_a) > 0.5,
        "long flows must suffer: {:.2}",
        deg(long_b, long_a)
    );
    assert!(
        deg(right_b, right_a) > 0.5,
        "right-segment flows must suffer: {:.2}",
        deg(right_b, right_a)
    );
    // ...while flows on the untouched left hop keep (or grow) their
    // goodput: the long flows' retreat frees capacity on r1->r2.
    assert!(
        deg(left_b, left_a) < 0.25,
        "left-segment flows must be (mostly) spared: {:.2}",
        deg(left_b, left_a)
    );
}

#[test]
fn multihop_flows_share_both_bottlenecks_fairly_at_baseline() {
    let (long_b, right_b, left_b) = run(false);
    // All three groups get real throughput through the chain.
    for (tag, g) in [("long", long_b), ("right", right_b), ("left", left_b)] {
        assert!(
            g > 2_000_000.0,
            "{tag} group should move megabytes in 24 s, got {g}"
        );
    }
    // Long flows traverse both bottlenecks and compete with both local
    // groups, so they get the smallest share.
    assert!(long_b < right_b && long_b < left_b);
}
