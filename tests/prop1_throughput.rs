//! Integration test for Proposition 1 (Eq. 2): the steady-phase victim
//! throughput per attack period matches the analytic
//! `a(1+b)/(2d(1−b))·(T_AIMD/RTT)²` packet count, end to end.

use pdos::prelude::*;
use pdos::tcp::sink::TcpSink;

#[test]
fn steady_phase_throughput_matches_eq2() {
    let mut spec = ScenarioSpec::ns2_dumbbell(1);
    spec.rtt_lo = 0.200;
    spec.rtt_hi = 0.200;
    let t_aimd = 2.0;

    let mut bench = spec.build().expect("builds");
    let train = PulseTrain::new(
        SimDuration::from_millis(100),
        BitsPerSec::from_mbps(40.0),
        SimDuration::from_millis(1900),
    )
    .expect("valid train");
    bench.attach_pulse_attack(train, SimTime::from_secs(10), None);

    // Let the transient die out (< 10 pulses per the paper), then measure
    // 15 whole periods.
    bench.run_until(SimTime::from_secs(30));
    let sink_id = bench.flows[0].sink;
    let before = bench
        .sim
        .agent_as::<TcpSink>(sink_id)
        .expect("sink")
        .goodput_bytes();
    bench.run_until(SimTime::from_secs(60));
    let after = bench
        .sim
        .agent_as::<TcpSink>(sink_id)
        .expect("sink")
        .goodput_bytes();
    let measured_packets = (after - before) as f64 / 1000.0;

    // Eq. (2) steady term: a(1+b)/(2d(1−b)) · (T/RTT)² per period.
    let per_period = 1.0 * 1.5 / (2.0 * 2.0 * 0.5) * (t_aimd / 0.200_f64).powi(2);
    let expected = per_period * 15.0;
    assert!((per_period - 75.0).abs() < 1e-9);

    let ratio = measured_packets / expected;
    assert!(
        (0.5..=1.5).contains(&ratio),
        "steady-phase throughput: measured {measured_packets:.0} packets vs Eq. (2) {expected:.0} (ratio {ratio:.2})"
    );
}

/// A ramping schedule (the §2.1 general form) escalates the damage pulse
/// by pulse: the second half of the ramp hurts more than the first.
#[test]
fn ramp_schedule_escalates_damage() {
    let spec = ScenarioSpec::ns2_dumbbell(6);
    let mut bench = spec.build().expect("builds");
    let sched = PulseSchedule::ramp(
        SimDuration::from_millis(75),
        SimDuration::from_millis(425),
        BitsPerSec::from_mbps(5.0),
        BitsPerSec::from_mbps(60.0),
        40, // 20 s of ramp at 0.5 s periods
    )
    .expect("valid ramp");
    bench.attach_pulse_schedule(sched, SimTime::from_secs(6));

    bench.run_until(SimTime::from_secs(6));
    let g0 = bench.goodput_bytes();
    bench.run_until(SimTime::from_secs(16)); // weak half of the ramp
    let g1 = bench.goodput_bytes();
    bench.run_until(SimTime::from_secs(26)); // strong half
    let g2 = bench.goodput_bytes();

    let weak_half = g1 - g0;
    let strong_half = g2 - g1;
    assert!(
        strong_half < weak_half * 3 / 4,
        "the ramp's strong half must hurt more: weak {weak_half} vs strong {strong_half}"
    );
}
