//! Generative robustness: random tree topologies with random endpoint
//! pairs must always route, deliver, and conserve packets. This guards
//! the routing/forwarding core against shapes the hand-built scenarios
//! never exercise.

use pdos::prelude::*;
use pdos::tcp::sender::TcpSender;
use pdos::tcp::sink::TcpSink;
use proptest::prelude::*;

/// Builds a random tree: node `i > 0` hangs off `parents[i-1] % i`.
fn tree_sim(parents: &[u8], src_pick: u8, dst_pick: u8) -> (Simulator, u64) {
    let n = parents.len() + 1;
    let mut t = TopologyBuilder::with_seed(3);
    let nodes: Vec<NodeId> = (0..n).map(|i| t.add_host(format!("n{i}"))).collect();
    let q = QueueSpec::DropTail { capacity: 200 };
    for (i, &p) in parents.iter().enumerate() {
        let child = nodes[i + 1];
        let parent = nodes[(p as usize) % (i + 1)];
        t.add_duplex_link(
            child,
            parent,
            BitsPerSec::from_mbps(10.0),
            SimDuration::from_millis(1 + (i as u64 % 5)),
            q.clone(),
        );
    }
    let mut sim = t.build().expect("tree builds");

    let src = nodes[src_pick as usize % n];
    let mut dst = nodes[dst_pick as usize % n];
    if dst == src {
        dst = nodes[(dst_pick as usize + 1) % n];
    }
    let mut goodput_probe = 0;
    if src != dst {
        let flow = FlowId::from_u32(7);
        let cfg = TcpConfig::ns2_newreno();
        let tx = sim.attach_agent(src, Box::new(TcpSender::new(cfg.clone(), flow, dst)));
        let rx = sim.attach_agent(dst, Box::new(TcpSink::new(cfg, flow, src)));
        sim.bind_flow(src, flow, tx);
        sim.bind_flow(dst, flow, rx);
        sim.run_until(SimTime::from_secs(3));
        goodput_probe = sim.agent_as::<TcpSink>(rx).expect("sink").goodput_bytes();
    }
    (sim, goodput_probe)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn random_trees_route_and_deliver(
        parents in proptest::collection::vec(any::<u8>(), 1..14),
        src_pick in any::<u8>(),
        dst_pick in any::<u8>(),
    ) {
        let (sim, goodput) = tree_sim(&parents, src_pick, dst_pick);
        let stats = sim.stats();
        // A tree is connected: no packet may die for lack of a route.
        prop_assert_eq!(stats.routeless, 0);
        // The flow moved real data end-to-end.
        prop_assert!(goodput > 100_000, "goodput {} too small", goodput);
        // Link-level conservation: offered = tx + dropped + backlog
        // (+ at most one in-flight packet per link).
        let mut offered = 0u64;
        let mut accounted = 0u64;
        for link in sim.links() {
            offered += link.stats().offered_packets;
            accounted += link.stats().tx_packets + link.drops() + link.backlog_packets() as u64;
        }
        prop_assert!(offered >= accounted);
        prop_assert!(offered <= accounted + sim.links().len() as u64);
    }
}
