//! Integration test for the §5 forward-looking claim: "a PDoS attacker
//! can achieve a higher attack gain by attacking a RED router than
//! attacking a drop-tail router."

use pdos::prelude::*;

fn degradation_with_queue(queue: BottleneckQueue, gamma: f64) -> f64 {
    let mut spec = ScenarioSpec::ns2_dumbbell(8);
    spec.queue = queue;
    let exp = GainExperiment::new(spec)
        .warmup(SimDuration::from_secs(8))
        .window(SimDuration::from_secs(25));
    let baseline = exp.baseline_bytes().expect("baseline runs");
    exp.run_point(0.075, 30e6, gamma, baseline)
        .expect("attack point runs")
        .degradation_sim
}

#[test]
fn red_yields_at_least_droptail_gain() {
    // Averaged over a few operating points to avoid cherry-picking.
    let gammas = [0.25, 0.45];
    let red: f64 = gammas
        .iter()
        .map(|&g| degradation_with_queue(BottleneckQueue::Red, g))
        .sum::<f64>()
        / gammas.len() as f64;
    let droptail: f64 = gammas
        .iter()
        .map(|&g| degradation_with_queue(BottleneckQueue::DropTail, g))
        .sum::<f64>()
        / gammas.len() as f64;
    // The paper's claim is strict; we allow a small tolerance because our
    // RED is not bit-identical to ns-2's.
    assert!(
        red >= droptail - 0.05,
        "RED should be at least as vulnerable as drop-tail: RED {red:.3} vs DropTail {droptail:.3}"
    );
    // Both must show real damage for the comparison to mean anything.
    assert!(
        red > 0.3 && droptail > 0.2,
        "red {red:.3}, droptail {droptail:.3}"
    );
}

#[test]
fn both_disciplines_share_the_gain_shape() {
    // The gain collapse at γ→1 is queue-independent (it's the stealth
    // factor), so the curve shape survives the ablation.
    for queue in [BottleneckQueue::Red, BottleneckQueue::DropTail] {
        let mut spec = ScenarioSpec::ns2_dumbbell(6);
        spec.queue = queue;
        let exp = GainExperiment::new(spec)
            .warmup(SimDuration::from_secs(6))
            .window(SimDuration::from_secs(18));
        let sweep = exp.sweep(0.075, 30e6, &[0.3, 0.95]).expect("sweep runs");
        let g: Vec<f64> = sweep.points.iter().map(|p| p.g_sim).collect();
        assert!(
            g[0] > g[1],
            "{queue:?}: gain at γ=0.3 must beat γ=0.95 (stealth collapse): {g:?}"
        );
    }
}
