//! Integration tests for §4.1.3 (shrew interaction) and the related
//! defense claims of §1.1.

use pdos::prelude::*;

fn experiment() -> GainExperiment {
    GainExperiment::new(ScenarioSpec::ns2_dumbbell(8))
        .warmup(SimDuration::from_secs(5))
        .window(SimDuration::from_secs(25))
}

/// At `T_AIMD = min_rto` the measured gain exceeds the analytical value by
/// far more than at a nearby off-harmonic period — Fig. 10's 'O' markers.
#[test]
fn shrew_point_beats_analysis() {
    let exp = experiment();
    let baseline = exp.baseline_bytes().expect("baseline runs");
    let (t_extent, r_attack) = (0.05, 50e6);
    // γ for T_AIMD = 1.0 s (the ns-2 min RTO): γ = 50e6·0.05/(15e6·1.0).
    let gamma_shrew = 50e6 * 0.05 / (15e6 * 1.0);
    let shrew = exp
        .run_point(t_extent, r_attack, gamma_shrew, baseline)
        .expect("shrew point runs");
    assert_eq!(shrew.shrew, Some(1), "period must sit on the fundamental");
    assert!(
        shrew.g_sim > shrew.g_analytic + 0.15,
        "shrew point must out-perform the FR-only analysis: sim {:.3} vs analytic {:.3}",
        shrew.g_sim,
        shrew.g_analytic
    );
}

/// Timeouts dominate the victim reaction at the shrew point; fast
/// recoveries dominate at a long off-harmonic period.
#[test]
fn shrew_locks_victims_into_timeout() {
    let exp = experiment();
    let baseline = exp.baseline_bytes().expect("baseline runs");
    let (t_extent, r_attack) = (0.05, 50e6);
    let gamma_for = |t_aimd: f64| 50e6 * 0.05 / (15e6 * t_aimd);

    let shrew = exp
        .run_point(t_extent, r_attack, gamma_for(1.0), baseline)
        .expect("runs");
    let gentle = exp
        .run_point(t_extent, r_attack, gamma_for(2.6), baseline)
        .expect("runs");

    let shrew_to_rate =
        shrew.timeouts as f64 / (shrew.timeouts + shrew.fast_recoveries).max(1) as f64;
    let gentle_to_rate =
        gentle.timeouts as f64 / (gentle.timeouts + gentle.fast_recoveries).max(1) as f64;
    assert!(
        shrew_to_rate > gentle_to_rate,
        "shrew period must push a larger share of reactions into timeout: {shrew_to_rate:.2} vs {gentle_to_rate:.2}"
    );
}

/// The timeout-aware model extension predicts at least as much damage as
/// the FR-only model, and strictly more at the shrew point.
#[test]
fn timeout_extension_covers_shrew_points() {
    let victims = ScenarioSpec::ns2_dumbbell(8).victims();
    let model = TimeoutModel::default();

    // Shrew period T = 1 s: the extension predicts strictly *less* victim
    // throughput than the FR-only Lemma 2 (long-RTT flows lock into
    // timeout), i.e. strictly more damage before any clamping.
    let psi_fr = psi_attack(&victims, 101, 1.0);
    let psi_ext = model.psi_attack_ext(&victims, 101, 1.0);
    // (The drop is small for mixed RTTs: Σ1/RTT² is dominated by the
    // short-RTT flows that stay in FR.)
    assert!(
        psi_ext < psi_fr,
        "extension must predict less victim throughput at the shrew point: {psi_ext:.0} vs {psi_fr:.0}"
    );
    // And the clamped degradation never goes the wrong way.
    let gamma = 50e6 * 0.05 / (15e6 * 1.0);
    let c = c_psi(&victims, 0.05, 50e6).expect("valid");
    assert!(model.degradation_ext(&victims, 1.0) >= degradation(gamma, c));

    // For an all-long-RTT population the clamp releases and the extended
    // degradation is strictly positive where the FR model still says 0.
    let long_rtts = VictimSet::new(1.0, 0.5, 2.0, 1000.0, 15e6, vec![0.46; 8]).expect("valid");
    let ext = model.degradation_ext(&long_rtts, 1.0);
    assert!(
        ext > 0.5,
        "an all-long-RTT population shrew-locks almost completely: {ext:.3}"
    );
}

/// Randomizing the minimum RTO (the Yang et al. defense) breaks the shrew
/// lock analytically, but is declared — and is — irrelevant to the
/// AIMD-based attack.
#[test]
fn randomized_rto_defense_scope() {
    let fixed = RandomizedRtoPolicy::fixed(1.0);
    let randomized = RandomizedRtoPolicy::new(1.0, 1.5).expect("valid policy");
    // Shrew-locked hit probability collapses with randomization.
    assert_eq!(fixed.shrew_hit_probability(1.0, 0.05), 1.0);
    assert!(randomized.shrew_hit_probability(1.0, 0.05) < 0.1);
    // Neither policy claims to defend the AIMD-based attack.
    assert!(!fixed.defends_aimd_attack());
    assert!(!randomized.defends_aimd_attack());
}
