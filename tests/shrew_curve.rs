//! Integration test: the Kuzmanovic & Knightly double-dip — victim
//! throughput under a pulsing attack has a local minimum exactly at
//! `T_AIMD = min_rto`, unlike the smooth AIMD gain curve.

use pdos::prelude::*;

fn normalized_throughput(period_ms: u64) -> f64 {
    let mut spec = ScenarioSpec::ns2_dumbbell(6);
    spec.rtt_lo = 0.080;
    spec.rtt_hi = 0.100;
    let warm = SimTime::from_secs(6);
    let end = SimTime::from_secs(36);

    let mut base = spec.build().expect("builds");
    base.run_until(warm);
    let b0 = base.goodput_bytes();
    base.run_until(end);
    let baseline = (base.goodput_bytes() - b0) as f64;

    let train = PulseTrain::new(
        SimDuration::from_millis(50),
        BitsPerSec::from_mbps(50.0),
        SimDuration::from_millis(period_ms - 50),
    )
    .expect("valid train");
    let mut bench = spec.build().expect("builds");
    bench.attach_pulse_attack(train, warm, None);
    bench.run_until(warm);
    let g0 = bench.goodput_bytes();
    bench.run_until(end);
    (bench.goodput_bytes() - g0) as f64 / baseline
}

#[test]
fn throughput_dips_at_the_min_rto_null() {
    let before = normalized_throughput(900);
    let null = normalized_throughput(1000);
    let after = normalized_throughput(1300);
    assert!(
        null < before && null < after,
        "T = min_rto must be a local minimum: rho(0.9)={before:.3}, rho(1.0)={null:.3}, rho(1.3)={after:.3}"
    );
}

#[test]
fn long_periods_recover_throughput() {
    let tight = normalized_throughput(1000);
    let loose = normalized_throughput(3000);
    assert!(
        loose > 2.0 * tight,
        "tripling the period off the null must recover substantially: {tight:.3} -> {loose:.3}"
    );
}

#[test]
fn model_and_simulation_agree_the_null_is_the_minimum() {
    // The fluid model ρ(T) ignores the slow-start ramp, so it overstates
    // recovery away from the nulls; but both model and simulation must
    // place the *minimum* of the probe set at T = min_rto.
    let probes = [900u64, 1000, 1300];
    let model: Vec<f64> = probes
        .iter()
        .map(|&t| shrew_throughput(t as f64 / 1000.0, 1.0))
        .collect();
    let sim: Vec<f64> = probes.iter().map(|&t| normalized_throughput(t)).collect();
    let argmin = |v: &[f64]| {
        v.iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("non-empty")
            .0
    };
    assert_eq!(
        argmin(&model),
        1,
        "model places the null at T=1 s: {model:?}"
    );
    assert_eq!(argmin(&sim), 1, "simulation agrees: {sim:?}");
}
