//! End-to-end determinism of the parallel sweep runner: results must be
//! a pure function of `(master seed, specs)` — worker count and
//! scheduling order must not leak into the report.

use pdos::scenarios::figures::{gain_figure_specs, roc_specs, FigureGrid, GainFigure};
use pdos::scenarios::runner::{
    derive_seed, AttackPoint, ExperimentSpec, RunOutcome, SeedPolicy, SweepRunner,
};
use pdos::scenarios::spec::ScenarioSpec;
use pdos::sim::time::SimDuration;

fn smoke_specs() -> Vec<ExperimentSpec> {
    gain_figure_specs(GainFigure::Fig06, &FigureGrid::smoke())
}

#[test]
fn same_master_seed_is_byte_identical_across_job_counts() {
    let specs = smoke_specs();
    let serial = SweepRunner::new(7).jobs(1).run(&specs);
    let parallel = SweepRunner::new(7).jobs(8).run(&specs);
    assert_eq!(
        serial.results_json(),
        parallel.results_json(),
        "worker count must not change results"
    );
    assert_eq!(serial.records.len(), specs.len());
    assert!(!serial.points().is_empty());
}

#[test]
fn different_master_seeds_differ_under_derived_policy() {
    // Short benign runs: goodput depends on the scenario seed, which the
    // derived policy overwrites per master seed.
    let specs = vec![
        ExperimentSpec::benign("det/benign", ScenarioSpec::ns2_dumbbell(3))
            .warmup(SimDuration::from_secs(4))
            .window(SimDuration::from_secs(6)),
    ];
    let a = SweepRunner::new(1)
        .seed_policy(SeedPolicy::Derived)
        .run(&specs);
    let b = SweepRunner::new(2)
        .seed_policy(SeedPolicy::Derived)
        .run(&specs);
    assert_ne!(
        a.records[0].scenario_seed, b.records[0].scenario_seed,
        "derived scenario seeds must follow the master seed"
    );
    assert_ne!(a.results_json(), b.results_json());
}

#[test]
fn distinct_specs_get_distinct_derived_seeds() {
    let specs = roc_specs(3, SimDuration::from_secs(10));
    let mut seeds: Vec<u64> = specs.iter().map(|s| derive_seed(11, s)).collect();
    seeds.sort_unstable();
    seeds.dedup();
    assert_eq!(
        seeds.len(),
        specs.len(),
        "no seed collisions across the grid"
    );
}

#[test]
fn figure_specs_reproduce_under_from_scenario_policy() {
    // The figure definition pins scenario seeds, so even two different
    // master seeds give identical physics under FromScenario.
    let specs = smoke_specs();
    let a = SweepRunner::new(0)
        .seed_policy(SeedPolicy::FromScenario)
        .jobs(2)
        .run(&specs);
    let b = SweepRunner::new(99)
        .seed_policy(SeedPolicy::FromScenario)
        .jobs(3)
        .run(&specs);
    let strip = |r: &pdos::scenarios::runner::SweepReport| {
        r.records
            .iter()
            .map(|rec| match &rec.outcome {
                RunOutcome::Point { point, .. } => format!("{point:?}"),
                other => format!("{other:?}"),
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(strip(&a), strip(&b));
}

#[test]
fn attack_point_enters_the_seed() {
    let base = ExperimentSpec::attacked(
        "p",
        ScenarioSpec::ns2_dumbbell(3),
        AttackPoint {
            t_extent: 0.075,
            r_attack: 30e6,
            gamma: 0.3,
        },
    );
    let mut other = base.clone();
    other.attack = Some(AttackPoint {
        t_extent: 0.075,
        r_attack: 30e6,
        gamma: 0.31,
    });
    assert_ne!(derive_seed(5, &base), derive_seed(5, &other));
}
