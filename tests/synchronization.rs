//! Integration tests for §2.3 / Fig. 3: the quasi-global synchronization
//! period equals the attack period, in both of the paper's environments.

use pdos::prelude::*;

/// Scaled Fig. 3(a): the ns-2 environment, 50 ms pulses at 100 Mbps every
/// 2 s. The paper counts 30 pinnacles in 60 s; we use a 30 s window and
/// expect ~15.
#[test]
fn fig3a_ns2_sync_period_is_2s() {
    let spec = ScenarioSpec::ns2_dumbbell(12);
    let train = PulseTrain::new(
        SimDuration::from_millis(50),
        BitsPerSec::from_mbps(100.0),
        SimDuration::from_millis(1950),
    )
    .expect("valid train");
    let result = SyncExperiment::new(spec)
        .warmup(SimDuration::from_secs(5))
        .window(SimDuration::from_secs(30))
        .run(train)
        .expect("experiment runs");

    assert_eq!(result.expected_period, 2.0);
    assert!(
        (13..=17).contains(&result.peaks),
        "30 s / 2 s = 15 pinnacles expected, got {}",
        result.peaks
    );
    let peak_period = result.period_from_peaks.expect("peaks found");
    assert!(
        (peak_period - 2.0).abs() < 0.35,
        "peak-count period {peak_period:.2} != 2 s"
    );
    let ac_period = result.period_from_autocorr.expect("autocorrelation works");
    assert!(
        (ac_period - 2.0).abs() < 0.25,
        "autocorrelation period {ac_period:.2} != 2 s"
    );
}

/// Scaled Fig. 3(b): the test-bed environment, 100 ms pulses at 50 Mbps
/// every 2.5 s (the paper counts 24 pinnacles in 60 s; we use 25 s -> 10).
#[test]
fn fig3b_testbed_sync_period_is_2_5s() {
    let spec = ScenarioSpec::testbed();
    let train = PulseTrain::new(
        SimDuration::from_millis(100),
        BitsPerSec::from_mbps(50.0),
        SimDuration::from_millis(2400),
    )
    .expect("valid train");
    let result = SyncExperiment::new(spec)
        .warmup(SimDuration::from_secs(8))
        .window(SimDuration::from_secs(25))
        .run(train)
        .expect("experiment runs");

    assert_eq!(result.expected_period, 2.5);
    assert!(
        (8..=12).contains(&result.peaks),
        "25 s / 2.5 s = 10 pinnacles expected, got {}",
        result.peaks
    );
    let ac_period = result.period_from_autocorr.expect("autocorrelation works");
    assert!(
        (ac_period - 2.5).abs() < 0.35,
        "autocorrelation period {ac_period:.2} != 2.5 s"
    );
}

/// The synchronization is caused by the attack: the same series processed
/// the same way shows a *different* period when the attack period changes.
#[test]
fn sync_period_follows_attack_period() {
    let run = |space_ms: u64| {
        let spec = ScenarioSpec::ns2_dumbbell(8);
        let train = PulseTrain::new(
            SimDuration::from_millis(50),
            BitsPerSec::from_mbps(100.0),
            SimDuration::from_millis(space_ms),
        )
        .expect("valid train");
        SyncExperiment::new(spec)
            .warmup(SimDuration::from_secs(5))
            .window(SimDuration::from_secs(24))
            .run(train)
            .expect("experiment runs")
    };
    let fast = run(950); // period 1 s
    let slow = run(2950); // period 3 s
    let fast_p = fast.period_from_autocorr.expect("fast period");
    let slow_p = slow.period_from_autocorr.expect("slow period");
    assert!((fast_p - 1.0).abs() < 0.2, "got {fast_p}");
    assert!((slow_p - 3.0).abs() < 0.4, "got {slow_p}");
}

/// The bottleneck queue itself oscillates at the attack period: depth
/// samples show the same dominant lag as the incoming traffic.
#[test]
fn queue_depth_oscillates_at_the_attack_period() {
    let spec = ScenarioSpec::ns2_dumbbell(8);
    let mut bench = spec.build().expect("builds");
    let train = PulseTrain::new(
        SimDuration::from_millis(50),
        BitsPerSec::from_mbps(100.0),
        SimDuration::from_millis(1950),
    )
    .expect("valid train");
    bench.attach_pulse_attack(train, SimTime::from_secs(5), None);
    bench.run_until(SimTime::from_secs(5));
    let bin = SimDuration::from_millis(50);
    let depths = bench.run_sampling_depth(SimTime::from_secs(29), bin);
    let series: Vec<f64> = depths.iter().map(|&d| d as f64).collect();
    let lag = dominant_lag(&series, 4, series.len() / 2).expect("periodic queue");
    let period = lag as f64 * bin.as_secs_f64();
    assert!(
        (period - 2.0).abs() < 0.3,
        "queue depth period {period:.2} s should equal T_AIMD = 2 s"
    );
    // The buffer actually fills during pulses.
    assert!(
        *depths.iter().max().unwrap() > 30,
        "pulses must fill the queue"
    );
}
